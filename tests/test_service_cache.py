"""Tests for repro.service.cache (fingerprint + LRU/TTL result cache)."""

import pytest

from repro.dataset.relation import MISSING, Relation
from repro.service.cache import ResultCache, dataset_fingerprint
from repro.service.protocol import Hyperparameters


def rel(rows, names=("a", "b")):
    return Relation.from_rows(list(names), rows)


HP = Hyperparameters()


class TestFingerprint:
    def test_deterministic(self):
        r = rel([(1, 2), (3, 4)])
        assert dataset_fingerprint(r, HP) == dataset_fingerprint(rel([(1, 2), (3, 4)]), HP)

    def test_sensitive_to_content(self):
        assert dataset_fingerprint(rel([(1, 2)]), HP) != dataset_fingerprint(rel([(1, 3)]), HP)

    def test_sensitive_to_value_types(self):
        assert dataset_fingerprint(rel([(1, 2)]), HP) != dataset_fingerprint(rel([("1", 2)]), HP)
        assert dataset_fingerprint(rel([(1, 2)]), HP) != dataset_fingerprint(rel([(1.0, 2)]), HP)

    def test_sensitive_to_missing_cells(self):
        assert dataset_fingerprint(rel([(1, MISSING)]), HP) != dataset_fingerprint(rel([(1, "M")]), HP)

    def test_sensitive_to_attribute_names_and_shape(self):
        assert dataset_fingerprint(rel([(1, 2)]), HP) != dataset_fingerprint(
            rel([(1, 2)], names=("a", "c")), HP
        )
        assert dataset_fingerprint(rel([(1, 2)]), HP) != dataset_fingerprint(
            rel([(1, 2), (1, 2)]), HP
        )

    def test_sensitive_to_hyperparameters(self):
        r = rel([(1, 2)])
        assert dataset_fingerprint(r, HP) != dataset_fingerprint(
            r, Hyperparameters(lam=0.5)
        )

    def test_column_order_matters(self):
        a = dataset_fingerprint(rel([(1, 2)]), HP)
        b = dataset_fingerprint(rel([(2, 1)], names=("b", "a")), HP)
        assert a != b


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh recency of "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_ttl_expiry(self, monkeypatch):
        import repro.service.cache as cache_mod

        now = [0.0]
        monkeypatch.setattr(cache_mod.time, "monotonic", lambda: now[0])
        cache = ResultCache(max_entries=4, ttl_seconds=10.0)
        cache.put("k", 1)
        now[0] = 5.0
        assert cache.get("k") == 1
        now[0] = 20.0
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_zero_capacity_disables_cache(self):
        cache = ResultCache(max_entries=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_put_same_key_replaces(self):
        cache = ResultCache(max_entries=2)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_clear(self):
        cache = ResultCache(max_entries=2)
        cache.put("k", 1)
        cache.clear()
        assert cache.get("k") is None
