"""Tests for repro.dataset.schema."""

import pytest

from repro.dataset.schema import Attribute, AttributeType, Schema, SchemaBuilder


def test_schema_from_strings_defaults_to_categorical():
    schema = Schema(["a", "b"])
    assert schema.names == ["a", "b"]
    assert schema.type_of("a") is AttributeType.CATEGORICAL


def test_schema_preserves_order():
    schema = Schema(["z", "a", "m"])
    assert schema.names == ["z", "a", "m"]


def test_schema_rejects_duplicates():
    with pytest.raises(ValueError, match="duplicate"):
        Schema(["a", "b", "a"])


def test_schema_rejects_bad_item_type():
    with pytest.raises(TypeError):
        Schema([1, 2])


def test_attribute_requires_name():
    with pytest.raises(ValueError):
        Attribute("")


def test_index_of_known_and_unknown():
    schema = Schema(["a", "b", "c"])
    assert schema.index_of("b") == 1
    with pytest.raises(KeyError):
        schema.index_of("nope")


def test_contains_and_getitem():
    schema = Schema(["a", "b"])
    assert "a" in schema
    assert "x" not in schema
    assert schema["a"].name == "a"
    assert schema[1].name == "b"


def test_schema_equality_and_hash():
    s1 = Schema(["a", "b"])
    s2 = Schema(["a", "b"])
    s3 = Schema(["b", "a"])
    assert s1 == s2
    assert hash(s1) == hash(s2)
    assert s1 != s3


def test_project_restricts_and_reorders():
    schema = Schema(["a", "b", "c"])
    proj = schema.project(["c", "a"])
    assert proj.names == ["c", "a"]


def test_schema_iteration_yields_attributes():
    schema = Schema(["a", "b"])
    names = [attr.name for attr in schema]
    assert names == ["a", "b"]


def test_builder_mixed_types():
    schema = (
        SchemaBuilder()
        .categorical("city")
        .numeric("pop", "area")
        .text("notes")
        .build()
    )
    assert schema.type_of("city") is AttributeType.CATEGORICAL
    assert schema.type_of("pop") is AttributeType.NUMERIC
    assert schema.type_of("area") is AttributeType.NUMERIC
    assert schema.type_of("notes") is AttributeType.TEXT


def test_len():
    assert len(Schema(["a", "b", "c"])) == 3
