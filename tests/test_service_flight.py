"""Service-level flight recorder: triggers, dumps, endpoints, stitching.

Covers the PR's acceptance criteria:

* an injected 5xx under ``serve --flight-dir`` produces exactly one
  atomic dump containing the offending request's span, its request log
  line, and the trigger event;
* a process-backend discovery yields one stitched trace (worker spans
  share the request trace id and parent-link to the submitting span)
  exportable to Perfetto-loadable JSON.
"""

import glob
import json
import os
import time

import numpy as np
import pytest

from repro.dataset.relation import Relation
from repro.obs import ListSink, Tracer, set_trace_id, write_chrome_trace
from repro.resilience.faults import FaultInjector
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import DiscoveryService, start_in_thread


def _relation(n=60, seed=0):
    rng = np.random.default_rng(seed)
    return Relation.from_arrays(
        ["a", "b"], [rng.integers(0, 5, n), rng.integers(0, 5, n)]
    )


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    raise AssertionError("condition not met within timeout")


def test_injected_5xx_produces_one_dump_with_request_evidence(tmp_path):
    flight_dir = str(tmp_path / "flight")
    with start_in_thread(workers=1, flight_dir=flight_dir) as handle:
        client = ServiceClient(handle.base_url, retry=None)
        client.wait_until_healthy()
        injector = FaultInjector(seed=0).inject("http.5xx", times=1).install()
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
        finally:
            injector.uninstall()
        error = excinfo.value
        assert error.status == 500
        assert error.trace_id  # carried on the typed client error

        # The dump is written after the reply goes out; wait for it.
        dumps = _wait_for(
            lambda: glob.glob(os.path.join(flight_dir, "flight-*.jsonl"))
        )
        assert len(dumps) == 1
        lines = [json.loads(l) for l in open(dumps[0])]
        header = lines[0]
        assert header["kind"] == "dump"
        assert header["reason"] == "http.5xx"
        events = lines[1:]

        # The offending request's span, log line and trigger, one trace.
        spans = [e for e in events
                 if e["kind"] == "span" and e.get("trace_id") == error.trace_id]
        assert any(e["data"]["name"] == "http.request" for e in spans)
        requests = [e for e in events
                    if e["kind"] == "request" and e.get("trace_id") == error.trace_id]
        assert requests and requests[-1]["data"]["status"] == 500
        triggers = [e for e in events if e["kind"] == "trigger"]
        assert triggers[-1]["data"]["reason"] == "http.5xx"
        assert triggers[-1]["trace_id"] == error.trace_id
        # The injected fault itself is visible as a state transition.
        assert any(e["kind"] == "state" and e["data"].get("event") == "fault.injected"
                   for e in events)

        # statusz reports the dump; Prometheus exposes the tallies.
        status = client.statusz()
        flight = status["flight"]
        assert flight["dumps_total"] == 1
        assert flight["dumps_by_reason"] == {"http.5xx": 1}
        assert flight["last_dump"]["path"] == dumps[0]
        assert flight["last_dump"]["age_seconds"] >= 0.0
        assert flight["buffer_fill"] > 0
        prom = client.metrics_prometheus()
        assert 'flight_dumps_total{reason="http.5xx"} 1' in prom
        assert "flight_events_total" in prom
        assert "flight_buffer_fill" in prom


def test_debounce_collapses_5xx_storm_into_one_dump(tmp_path):
    flight_dir = str(tmp_path / "flight")
    with start_in_thread(workers=1, flight_dir=flight_dir) as handle:
        client = ServiceClient(handle.base_url, retry=None)
        client.wait_until_healthy()
        injector = FaultInjector(seed=0).inject("http.5xx", times=5).install()
        try:
            for _ in range(5):
                with pytest.raises(ServiceError):
                    client.healthz()
        finally:
            injector.uninstall()
        _wait_for(lambda: glob.glob(os.path.join(flight_dir, "flight-*.jsonl")))
        client.healthz()  # one more round trip so all triggers settled
        dumps = glob.glob(os.path.join(flight_dir, "flight-*.jsonl"))
        assert len(dumps) == 1  # 30s default debounce absorbed the storm
        assert handle.service.flight.stats()["dumps_total"] == 1


def test_debug_flight_endpoint_snapshots_ring():
    with start_in_thread(workers=1) as handle:
        client = ServiceClient(handle.base_url, retry=None)
        client.wait_until_healthy()
        snap = client._request("GET", "/v1/debug/flight?limit=3")
        assert len(snap["events"]) <= 3
        assert snap["stats"]["events_total"] > 0
        assert snap["stats"]["directory"] is None
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/debug/flight?limit=bogus")
        assert excinfo.value.status == 400


def test_client_results_carry_trace_id():
    with start_in_thread(workers=1) as handle:
        client = ServiceClient(handle.base_url, retry=None)
        client.wait_until_healthy()
        payload = client.discover_raw(_relation())
        assert payload.get("trace_id")
        # Error bodies embed the id too (not just the header).
        injector = FaultInjector(seed=0).inject("http.5xx", times=1).install()
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
        finally:
            injector.uninstall()
        assert excinfo.value.trace_id


def test_process_backend_discover_yields_one_stitched_trace(tmp_path):
    sink = ListSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    service = DiscoveryService(workers=1, executor="process", tracer=tracer)
    token = set_trace_id("cafe000000000001")
    try:
        status, body = service.discover({"relation": _wire(_relation())})
    finally:
        set_trace_id(None)
        service.close()
    assert status == 200
    assert body["result"]["fds"] is not None

    spans = [e for e in sink.events if e.get("type") == "span"]
    names = {e["name"] for e in spans}
    assert {"service.job", "worker.job"} <= names
    assert {e["trace_id"] for e in spans} == {"cafe000000000001"}
    job = next(e for e in spans if e["name"] == "service.job")
    worker = next(e for e in spans if e["name"] == "worker.job")
    assert worker["parent_id"] == job["span_id"]
    assert worker["attributes"]["worker_pid"] != os.getpid()

    out = tmp_path / "job.perfetto.json"
    summary = write_chrome_trace(sink.events, str(out))
    assert summary["traces"] == 1
    assert summary["spans"] == len(spans)
    doc = json.loads(out.read_text())
    assert any(
        e["ph"] == "M" and e["name"] == "thread_name"
        and e["args"]["name"].startswith("worker ")
        for e in doc["traceEvents"]
    )
    del token


def _wire(relation):
    from repro.service.protocol import relation_to_wire

    return relation_to_wire(relation)


def test_worker_crash_triggers_flight_dump(tmp_path):
    flight_dir = str(tmp_path / "flight")
    service = DiscoveryService(
        workers=1, executor="process", flight_dir=flight_dir, job_timeout=30.0
    )
    try:
        injector = FaultInjector(seed=0).inject(
            "parallel.worker_crash", times=1
        ).install()
        try:
            status, body = service.discover({"relation": _wire(_relation())})
        finally:
            injector.uninstall()
        assert status == 500
        dumps = _wait_for(
            lambda: glob.glob(os.path.join(flight_dir, "flight-*worker_crash*.jsonl"))
        )
        lines = [json.loads(l) for l in open(dumps[0])]
        assert lines[0]["reason"] == "worker_crash"
        jobs = [e for e in lines[1:] if e["kind"] == "job"]
        assert any("WorkerCrashError" in (e["data"].get("error") or "") for e in jobs)
    finally:
        service.close()
