"""Tests for catalog sampling: determinism, error bars, adequacy."""

import sqlite3

import numpy as np
import pytest

from repro.catalog import (
    BlockSampler,
    DEFAULT_TOLERANCE,
    ReservoirSampler,
    SqliteConnector,
    covariance_standard_error,
    sample_table,
)
from repro.dataset.relation import Relation
from repro.dataset.schema import Attribute, AttributeType, Schema
from repro.errors import CatalogError

SCHEMA = Schema([
    Attribute("u", AttributeType.NUMERIC),
    Attribute("v", AttributeType.NUMERIC),
])


def _batches(n, batch=50, seed=3):
    rng = np.random.default_rng(seed)
    out = []
    for start in range(0, n, batch):
        m = min(batch, n - start)
        rows = [(float(rng.normal()), float(rng.normal())) for _ in range(m)]
        out.append(Relation.from_rows(SCHEMA, rows))
    return out


def _run(sampler, batches):
    for b in batches:
        sampler.feed(b)
    return sampler.result(SCHEMA)


def test_reservoir_same_seed_is_deterministic():
    batches = _batches(500)
    a = _run(ReservoirSampler(60, seed=9), batches)
    b = _run(ReservoirSampler(60, seed=9), batches)
    assert a == b
    assert a.n_rows == 60


def test_reservoir_different_seed_differs():
    batches = _batches(500)
    a = _run(ReservoirSampler(60, seed=1), batches)
    b = _run(ReservoirSampler(60, seed=2), batches)
    assert a != b


def test_reservoir_batching_invariance():
    """The retained set depends on the seed and row stream, not batching."""
    rows = _batches(300, batch=300)
    rebatched = _batches(300, batch=17)
    a = _run(ReservoirSampler(40, seed=5), rows)
    b = _run(ReservoirSampler(40, seed=5), rebatched)
    assert a == b


def test_reservoir_under_k_keeps_everything():
    batches = _batches(30)
    out = _run(ReservoirSampler(100, seed=0), batches)
    assert out == Relation(
        SCHEMA, {n: [r for b in batches for r in b.column(n)] for n in ("u", "v")}
    )


def test_reservoir_is_roughly_uniform():
    """Every source row should land in the reservoir ~k/n of the time."""
    hits = np.zeros(200)
    schema = Schema([Attribute("i", AttributeType.NUMERIC)])
    batches = [
        Relation.from_rows(schema, [(float(i),) for i in range(200)])
    ]
    for seed in range(300):
        sampler = ReservoirSampler(20, seed=seed)
        for b in batches:
            sampler.feed(b)
        out = sampler.result(schema)
        for value in out.column("i"):
            hits[int(value)] += 1
    rates = hits / 300.0
    assert abs(rates.mean() - 0.1) < 1e-9  # exactly k drawn each time
    assert rates.min() > 0.02 and rates.max() < 0.25  # no systematic bias


def test_block_sampler_deterministic_and_trimmed():
    batches = _batches(500, batch=40)
    a = _run(BlockSampler(90, seed=4, block_rows=40), batches)
    b = _run(BlockSampler(90, seed=4, block_rows=40), batches)
    assert a == b
    assert a.n_rows == 90


def test_sampler_rejects_bad_k():
    with pytest.raises(ValueError):
        ReservoirSampler(0)
    with pytest.raises(ValueError):
        BlockSampler(0)


def test_standard_error_shrinks_like_sqrt_n():
    """Quadrupling the sample should roughly halve the error bars."""
    rng = np.random.default_rng(0)
    big = rng.normal(size=(40_000, 4))
    _, se_small = covariance_standard_error(big[:2_000])
    _, se_large = covariance_standard_error(big[:8_000])
    ratio = se_small.max() / se_large.max()
    assert 1.6 < ratio < 2.5  # ~2 = sqrt(4), with Monte-Carlo slack


def test_standard_error_matches_plugin_formula():
    rng = np.random.default_rng(1)
    Z = rng.normal(size=(512, 3))
    Z = (Z - Z.mean(axis=0)) / Z.std(axis=0)
    S, se = covariance_standard_error(Z, chunk_rows=100)
    prods = Z[:, :, None] * Z[:, None, :]
    expected_S = prods.mean(axis=0)
    expected_se = np.sqrt(prods.var(axis=0) / Z.shape[0])
    assert np.allclose(S, expected_S)
    assert np.allclose(se, expected_se)


@pytest.fixture
def one_table_db(tmp_path):
    def build(n_rows):
        path = tmp_path / f"t{n_rows}.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE data (a REAL, b REAL, c TEXT)")
        rng = np.random.default_rng(7)
        conn.executemany(
            "INSERT INTO data VALUES (?,?,?)",
            [
                (float(rng.normal()), float(rng.normal()), f"g{i % 5}")
                for i in range(n_rows)
            ],
        )
        conn.commit()
        conn.close()
        return SqliteConnector(path)

    return build


def test_adequate_flag_flips_at_documented_tolerance(one_table_db):
    connector = one_table_db(5_000)
    sample = sample_table(connector, "data", 2_000, seed=0)
    assert sample.tolerance == DEFAULT_TOLERANCE == 0.05
    # 2000 standardized rows sit comfortably under the 0.05 default...
    assert sample.max_standard_error <= 0.05
    assert sample.adequate
    # ...and the same sample is inadequate against a tolerance just
    # below its own max SE: the flag is exactly max_se <= tolerance.
    tight = sample_table(
        connector, "data", 2_000, seed=0,
        tolerance=sample.max_standard_error * 0.9,
    )
    assert not tight.adequate
    loose = sample_table(
        connector, "data", 2_000, seed=0,
        tolerance=sample.max_standard_error * 1.1,
    )
    assert loose.adequate


def test_small_sample_is_flagged_inadequate(one_table_db):
    sample = sample_table(one_table_db(400), "data", 50, seed=0)
    assert sample.max_standard_error > DEFAULT_TOLERANCE
    assert not sample.adequate


def test_sample_table_exact_when_table_fits(one_table_db):
    sample = sample_table(one_table_db(120), "data", 500, seed=0)
    assert sample.exact
    assert sample.n_sampled == sample.n_source_rows == 120


def test_sample_table_deterministic_summary(one_table_db):
    connector = one_table_db(1_000)
    a = sample_table(connector, "data", 300, seed=2).summary()
    b = sample_table(connector, "data", 300, seed=2).summary()
    assert a == b
    assert set(a) >= {
        "n_source_rows", "n_sampled", "method", "seed", "adequate",
        "tolerance", "max_standard_error", "standard_error",
    }


def test_sample_table_rejects_unknown_method(one_table_db):
    with pytest.raises(CatalogError, match="unknown sampling method"):
        sample_table(one_table_db(100), "data", 10, method="stratified")
