"""Tests for repro.linalg.glasso."""

import numpy as np
import pytest

from repro.linalg.covariance import is_positive_definite
from repro.linalg.glasso import (
    graphical_lasso,
    precision_to_partial_correlation,
)


def test_zero_penalty_is_matrix_inverse():
    S = np.array([[2.0, 0.5], [0.5, 1.0]])
    res = graphical_lasso(S, 0.0)
    assert np.allclose(res.precision, np.linalg.inv(S), atol=1e-5)


def test_penalty_sparsifies_independent_pairs():
    rng = np.random.default_rng(0)
    # Three independent variables plus one strongly coupled pair.
    X = rng.normal(size=(5000, 4))
    X[:, 1] = 0.95 * X[:, 0] + 0.3 * X[:, 1]
    S = np.cov(X, rowvar=False, bias=True)
    res = graphical_lasso(S, 0.1)
    support = res.support
    assert support[0, 1]  # real edge kept
    assert not support[2, 3]  # independent pair zeroed


def test_precision_is_symmetric_and_pd():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(500, 6))
    S = np.cov(X, rowvar=False, bias=True)
    res = graphical_lasso(S, 0.05)
    assert np.allclose(res.precision, res.precision.T, atol=1e-8)
    assert is_positive_definite(res.precision, tol=-1e-9)


def test_converges_on_identity():
    res = graphical_lasso(np.eye(5), 0.1)
    assert res.converged
    assert np.allclose(res.precision, np.diag(1.0 / (1.0 + 0.1) * np.ones(5)), atol=1e-6)
    assert not res.support.any()


def test_huge_penalty_gives_diagonal_precision():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(300, 4))
    S = np.cov(X, rowvar=False, bias=True)
    res = graphical_lasso(S, 10.0)
    assert not res.support.any()


def test_covariance_precision_are_inverses():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(1000, 5))
    S = np.cov(X, rowvar=False, bias=True)
    res = graphical_lasso(S, 0.02, max_iter=200)
    assert np.allclose(res.covariance @ res.precision, np.eye(5), atol=1e-2)


def test_trivial_sizes():
    empty = graphical_lasso(np.zeros((0, 0)), 0.1)
    assert empty.precision.shape == (0, 0)
    single = graphical_lasso(np.array([[2.0]]), 0.5)
    assert single.precision[0, 0] == pytest.approx(1.0 / 2.5)


def test_rejects_negative_penalty_and_nonsquare():
    with pytest.raises(ValueError):
        graphical_lasso(np.eye(2), -1.0)
    with pytest.raises(ValueError):
        graphical_lasso(np.zeros((2, 3)), 0.1)


def test_partial_correlation_diagonal_is_one():
    theta = np.array([[2.0, -0.5], [-0.5, 1.0]])
    pc = precision_to_partial_correlation(theta)
    assert pc[0, 0] == 1.0 and pc[1, 1] == 1.0
    assert pc[0, 1] == pytest.approx(0.5 / np.sqrt(2.0))


def test_glasso_2x2_closed_form_support():
    """For a 2x2 correlation matrix, the off-diagonal survives iff |r| > lam."""
    for r, lam, expect_edge in ((0.6, 0.3, True), (0.2, 0.3, False)):
        S = np.array([[1.0, r], [r, 1.0]])
        res = graphical_lasso(S, lam)
        assert bool(res.support[0, 1]) is expect_edge, (r, lam)


def _random_spd(p=6, seed=3):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(p, p))
    S = A @ A.T / p + np.eye(p)
    d = np.sqrt(np.diag(S))
    return S / np.outer(d, d)


def test_warm_start_converges_to_same_solution():
    S = _random_spd()
    cold = graphical_lasso(S, 0.1)
    warm = graphical_lasso(S, 0.1, Theta0=cold.precision)
    assert np.allclose(warm.precision, cold.precision, atol=1e-4)
    assert np.array_equal(warm.support, cold.support)
    # Restarting at the solution must not take longer than solving cold.
    assert warm.n_iter <= cold.n_iter


def test_warm_start_from_perturbed_statistics():
    """Warm-starting from a *nearby* problem's solution still converges."""
    S = _random_spd(seed=4)
    previous = graphical_lasso(S * 0.98 + 0.02 * np.eye(S.shape[0]), 0.1)
    warm = graphical_lasso(S, 0.1, Theta0=previous.precision)
    cold = graphical_lasso(S, 0.1)
    assert np.allclose(warm.precision, cold.precision, atol=1e-3)
    assert is_positive_definite(warm.precision)


def test_degenerate_warm_start_falls_back_to_cold():
    """Non-finite or wrong-shape Theta0 must not poison the solve."""
    S = _random_spd(seed=5)
    cold = graphical_lasso(S, 0.1)
    bad = np.full_like(S, np.nan)
    for theta0 in (bad, np.eye(3)):
        result = graphical_lasso(S, 0.1, Theta0=theta0)
        assert np.allclose(result.precision, cold.precision, atol=1e-6)
