"""Tests for repro.core.transform (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core.transform import (
    build_codecs,
    pair_difference_transform,
    uniform_pair_transform,
)
from repro.dataset.relation import MISSING, Relation
from repro.dataset.schema import Attribute, AttributeType, Schema


def categorical_relation(n=50, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        x = int(rng.integers(4))
        rows.append((x, x % 2, int(rng.integers(3))))
    return Relation.from_rows(["x", "y", "z"], rows)


def test_output_shape_is_nk_by_k():
    rel = categorical_relation(40)
    out = pair_difference_transform(rel, np.random.default_rng(0))
    assert out.shape == (40 * 3, 3)


def test_output_is_binary():
    rel = categorical_relation(30)
    out = pair_difference_transform(rel, np.random.default_rng(0))
    assert set(np.unique(out)) <= {0.0, 1.0}


def test_fd_implies_agreement_implication():
    """x -> y in the data means: whenever x agrees, y agrees."""
    rel = categorical_relation(100)
    out = pair_difference_transform(rel, np.random.default_rng(1))
    x_agree = out[:, 0] == 1.0
    assert np.all(out[x_agree, 1] == 1.0)


def test_sorted_shift_boosts_agreement_rate():
    """Algorithm 2's sort+shift yields more agreeing pairs on the sorted
    attribute than uniform pair sampling (its purpose)."""
    rng = np.random.default_rng(2)
    rel = Relation.from_rows(
        ["high_card"], [(int(rng.integers(500)),) for _ in range(300)]
    )
    circular = pair_difference_transform(rel, np.random.default_rng(0))
    uniform = uniform_pair_transform(rel, np.random.default_rng(0), n_pairs=300)
    assert circular[:, 0].mean() > uniform[:, 0].mean()


def test_missing_never_agrees():
    rel = Relation.from_rows(["a", "b"], [(MISSING, 1), (MISSING, 1), (MISSING, 1)])
    out = pair_difference_transform(rel, np.random.default_rng(0))
    assert np.all(out[:, 0] == 0.0)
    assert np.all(out[:, 1] == 1.0)


def test_requires_two_rows():
    rel = Relation.from_rows(["a"], [(1,)])
    with pytest.raises(ValueError):
        pair_difference_transform(rel, np.random.default_rng(0))
    with pytest.raises(ValueError):
        uniform_pair_transform(rel, np.random.default_rng(0))


def test_max_rows_per_attribute_caps_sample():
    rel = categorical_relation(200)
    out = pair_difference_transform(
        rel, np.random.default_rng(0), max_rows_per_attribute=50
    )
    assert out.shape == (50 * 3, 3)


def test_numeric_tolerance_equality():
    schema = Schema([Attribute("v", AttributeType.NUMERIC)])
    rel = Relation(schema, {"v": [1.0, 1.0 + 1e-12, 5.0, 9.0]})
    out = pair_difference_transform(rel, np.random.default_rng(0))
    # The two nearly-identical values agree under the relative tolerance.
    assert out[:, 0].sum() >= 1.0


def test_numeric_missing_never_agrees():
    schema = Schema([Attribute("v", AttributeType.NUMERIC)])
    rel = Relation(schema, {"v": [MISSING, MISSING, 1.0]})
    out = pair_difference_transform(rel, np.random.default_rng(0))
    assert np.all(out == 0.0)


def test_text_jaccard_agreement():
    schema = Schema([Attribute("t", AttributeType.TEXT)])
    rel = Relation(schema, {
        "t": ["main street 12", "Main Street 12", "elm avenue", MISSING],
    })
    codecs = build_codecs(rel)
    vals = codecs[0].values
    agree = codecs[0].agree(
        np.array([vals[0], vals[0], vals[3]], dtype=object),
        np.array([vals[1], vals[2], vals[3]], dtype=object),
    )
    assert agree[0] == 1.0  # case-insensitive token match
    assert agree[1] == 0.0  # different tokens
    assert agree[2] == 0.0  # missing never agrees


def test_uniform_pairs_never_pair_row_with_itself():
    rel = categorical_relation(10)
    rng = np.random.default_rng(3)
    # With identity rows the only way to see 100% agreement on a unique key
    # column would be self-pairing.
    unique_rel = Relation.from_rows(["k"], [(i,) for i in range(50)])
    out = uniform_pair_transform(unique_rel, rng, n_pairs=500)
    assert np.all(out[:, 0] == 0.0)


def test_deterministic_given_seed():
    rel = categorical_relation(60)
    a = pair_difference_transform(rel, np.random.default_rng(5))
    b = pair_difference_transform(rel, np.random.default_rng(5))
    assert np.array_equal(a, b)
