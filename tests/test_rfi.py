"""Tests for repro.baselines.rfi."""

import numpy as np
import pytest

from repro.baselines.rfi import Rfi
from repro.baselines.tane import TimeBudgetExceeded
from repro.core.fd import FD
from repro.dataset.relation import Relation


def fd_relation(n=400, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = int(rng.integers(12))
        rows.append((a, a % 4, int(rng.integers(5))))
    return Relation.from_rows(["a", "b", "c"], rows)


def test_top1_per_attribute():
    res = Rfi().discover(fd_relation())
    rhs_seen = [fd.rhs for fd in res.fds]
    assert len(rhs_seen) == len(set(rhs_seen))


def test_finds_true_determinant():
    res = Rfi().discover(fd_relation())
    fd_b = next((fd for fd in res.fds if fd.rhs == "b"), None)
    assert fd_b is not None
    assert "a" in fd_b.lhs


def test_scores_in_unit_interval():
    res = Rfi().discover(fd_relation())
    assert all(0.0 <= s <= 1.0 for s in res.scores.values())


def test_min_score_filters_weak_fds():
    strict = Rfi(min_score=0.99).discover(fd_relation())
    loose = Rfi(min_score=0.0).discover(fd_relation())
    assert len(strict.fds) <= len(loose.fds)


def test_bias_correction_rejects_spurious_key_determinants():
    """A unique key explains any attribute perfectly in-sample; the
    permutation bias correction must discount it."""
    rng = np.random.default_rng(1)
    rows = [(i, int(rng.integers(3))) for i in range(300)]
    rel = Relation.from_rows(["key", "y"], rows)
    res = Rfi(min_score=0.2).discover(rel)
    assert all(fd.rhs != "y" or "key" not in fd.lhs for fd in res.fds)


def test_alpha_bounds():
    with pytest.raises(ValueError):
        Rfi(alpha=0.0)
    with pytest.raises(ValueError):
        Rfi(alpha=1.5)


def test_smaller_alpha_scores_fewer_candidates():
    rel = fd_relation()
    full = Rfi(alpha=1.0, beam_width=6).discover(rel)
    approx = Rfi(alpha=0.3, beam_width=6).discover(rel)
    assert approx.candidates_scored <= full.candidates_scored


def test_time_limit_raises():
    rng = np.random.default_rng(0)
    rows = [tuple(int(rng.integers(30)) for _ in range(15)) for _ in range(1500)]
    rel = Relation.from_rows([f"c{i}" for i in range(15)], rows)
    with pytest.raises(TimeBudgetExceeded):
        Rfi(time_limit=0.01).discover(rel)


def test_constant_attribute_gets_no_fd():
    rows = [(int(i % 5), "const") for i in range(100)]
    rel = Relation.from_rows(["a", "b"], rows)
    res = Rfi().discover(rel)
    assert all(fd.rhs != "b" for fd in res.fds)
