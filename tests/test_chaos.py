"""Chaos suite: deterministic fault injection against a live service.

Every scenario runs a real in-thread HTTP server and a retrying
:class:`ServiceClient`, with seeded faults injected at the failure
points the resilience layer claims to survive:

* ``http.reset``       — connection dropped after the handler ran;
* ``http.5xx``         — response replaced with an injected 500;
* ``job.worker``       — worker thread crashes before running the job;
* ``glasso.nonconverge`` — solver reports non-convergence.

Invariants asserted throughout: every job reaches a terminal state (no
hung jobs), idempotent retries never duplicate work, and exhausted
retry budgets surface *typed* errors. Marked ``tier2`` (several full
client/server round trips); the fast resilience units live in
``test_resilience.py`` / ``test_service_resilience.py``.
"""

import numpy as np
import pytest

from repro.core.fd import FD
from repro.dataset.relation import Relation
from repro.resilience import FaultInjector, RetryPolicy
from repro.service import ServiceClient, ServiceError, start_in_thread
from repro.service.jobs import TERMINAL_STATES

pytestmark = pytest.mark.tier2


def chaos_relation(seed=0, n=300, p=6):
    """Relation with an embedded a0 -> a1 FD plus noise columns."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(12))
        rows.append(tuple([base, base % 4] + [int(rng.integers(5)) for _ in range(p - 2)]))
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


@pytest.fixture
def handle():
    with start_in_thread(workers=2, job_timeout=60.0, max_queue_depth=16) as h:
        ServiceClient(h.base_url, retry=None).wait_until_healthy()
        yield h


def make_client(handle, seed=0):
    return ServiceClient(
        handle.base_url,
        timeout=30.0,
        retry=RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.5,
                          budget_seconds=15.0),
        retry_seed=seed,
    )


def assert_no_hung_jobs(handle, timeout=30.0):
    """Every job the service ever accepted must reach a terminal state."""
    with handle.service.jobs._lock:
        jobs = list(handle.service.jobs._jobs.values())
    for job in jobs:
        assert job.wait(timeout=timeout) in TERMINAL_STATES, (
            f"job {job.id} hung in state {job.state}"
        )


def discoveries_total(handle) -> float:
    """Pipeline runs actually executed (the no-duplicate-work metric)."""
    return handle.service.registry.counter("fdx_discoveries_total").value


class TestConnectionResets:
    def test_idempotent_submit_survives_resets_without_duplicate_work(self, handle):
        client = make_client(handle, seed=1)
        # The first two responses are dropped after the handler ran:
        # the submit's effect happened but the client never heard back.
        with FaultInjector(seed=1).inject("http.reset", times=2).install() as chaos:
            envelope = client.discover_raw(
                chaos_relation(seed=11), wait=False, idempotency_key="chaos-key-11"
            )
            # A retry reattaches via the Idempotency-Key while the job is
            # live, or answers from the result cache once it finished —
            # either way the reply describes the *original* work.
            if envelope.get("cached"):
                result = envelope["result"]
            else:
                result = client.wait_for_job(envelope["job_id"], timeout=60)["result"]
        assert chaos.counts()["http.reset"]["fired"] == 2
        assert client.retries_total >= 2
        fds = {(tuple(f["lhs"]), f["rhs"]) for f in result["fds"]}
        assert (("a0",), "a1") in fds
        # Exactly one discovery ran despite three submit attempts.
        assert discoveries_total(handle) == 1
        counters = handle.service.metrics.snapshot()["counters"]
        assert (counters.get("idempotent_replays", 0)
                + counters.get("discover_cache_hits", 0)) >= 1
        assert_no_hung_jobs(handle)

    def test_sync_discover_survives_reset(self, handle):
        client = make_client(handle, seed=2)
        with FaultInjector(seed=2).inject("http.reset", times=1).install():
            result = client.discover(chaos_relation(seed=12))
        assert FD(["a0"], "a1") in set(result.fds)
        assert discoveries_total(handle) == 1
        assert_no_hung_jobs(handle)


class TestServerErrors:
    def test_5xx_burst_is_retried_through(self, handle):
        client = make_client(handle, seed=3)
        with FaultInjector(seed=3).inject("http.5xx", times=2).install() as chaos:
            result = client.discover(chaos_relation(seed=13))
        assert chaos.counts()["http.5xx"]["fired"] == 2
        assert client.retries_total >= 2
        assert FD(["a0"], "a1") in set(result.fds)
        assert_no_hung_jobs(handle)

    def test_exhausted_retry_budget_raises_typed_error(self, handle):
        client = ServiceClient(
            handle.base_url, timeout=30.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05,
                              budget_seconds=5.0),
            retry_seed=4,
        )
        with FaultInjector(seed=4).inject("http.5xx", times=None).install():
            with pytest.raises(ServiceError) as excinfo:
                client.submit(chaos_relation(seed=14))
        assert excinfo.value.status == 500
        assert excinfo.value.retryable is True
        assert_no_hung_jobs(handle)


class TestWorkerCrashes:
    def test_worker_crash_lands_job_in_failed_not_hung(self, handle):
        client = ServiceClient(handle.base_url, retry=None, timeout=30.0)
        with FaultInjector(seed=5).inject("job.worker", times=1).install():
            envelope = client.discover_raw(chaos_relation(seed=15), wait=False)
            job = handle.service.jobs.get(envelope["job_id"])
            assert job.wait(timeout=30) == "failed"
        assert "worker crashed" in job.error
        # The failure is a clean typed outcome for pollers too.
        status = client.job(envelope["job_id"])
        assert status["state"] == "failed"
        with pytest.raises(ServiceError, match="failed"):
            client.wait_for_job(envelope["job_id"], timeout=5)
        assert_no_hung_jobs(handle)

    def test_resubmit_after_crash_succeeds(self, handle):
        client = make_client(handle, seed=6)
        with FaultInjector(seed=6).inject("job.worker", times=1).install():
            envelope = client.discover_raw(chaos_relation(seed=16), wait=False)
            handle.service.jobs.get(envelope["job_id"]).wait(timeout=30)
        # Fresh submit (new key, fault exhausted): work completes.
        job_id = client.submit(chaos_relation(seed=16))
        status = client.wait_for_job(job_id, timeout=60)
        assert status["state"] == "done"
        assert_no_hung_jobs(handle)


class TestSolverChaos:
    def test_nonconvergence_yields_degraded_result_over_wire(self, handle):
        client = make_client(handle, seed=7)
        with FaultInjector(seed=7).inject("glasso.nonconverge", times=None).install():
            result = client.discover(chaos_relation(seed=17))
        diagnostics = result.diagnostics
        assert diagnostics["degraded"] is True
        assert diagnostics["fallback_chain"][-1]["stage"] == "neighborhood"
        # Degraded, not broken: the embedded FD still comes out.
        assert FD(["a0"], "a1") in set(result.fds)
        assert_no_hung_jobs(handle)


class TestCombinedChaos:
    def test_probabilistic_fault_storm_is_survivable_and_reproducible(self, handle):
        """Seeded storm across every fault point; same seed, same outcome."""
        client = make_client(handle, seed=8)
        injector = (
            FaultInjector(seed=8)
            .inject("http.reset", times=None, probability=0.2)
            .inject("http.5xx", times=None, probability=0.2)
            .inject("glasso.nonconverge", times=None, probability=0.3)
        )
        completed = []
        with injector.install():
            for i in range(4):
                try:
                    result = client.discover(chaos_relation(seed=20 + i))
                    completed.append(result)
                except ServiceError as exc:
                    # Budget exhaustion is an acceptable outcome in a
                    # storm — but it must be typed and retryable.
                    assert exc.retryable is True
        assert completed, "no request survived a 20%-fault storm"
        for result in completed:
            assert FD(["a0"], "a1") in set(result.fds)
        assert_no_hung_jobs(handle)
        # Determinism: the injector's decision sequence is seed-driven.
        replay = (
            FaultInjector(seed=8)
            .inject("http.reset", times=None, probability=0.2)
        )
        first = [replay.fires("http.reset") for _ in range(10)]
        replay2 = (
            FaultInjector(seed=8)
            .inject("http.reset", times=None, probability=0.2)
        )
        assert first == [replay2.fires("http.reset") for _ in range(10)]


class TestParallelWorkerCrash:
    """``parallel.worker_crash``: a worker process dies hard (os._exit).

    Fork-started workers inherit the installed injector, so arming the
    point in the test process makes the next worker child die on entry —
    the chaos stand-in for an OOM kill. The claims under test: the death
    surfaces as a *typed* ReproError (WorkerCrashError), the job reaches
    a terminal state (no hang), and the dead worker is reaped.
    """

    def test_injected_crash_in_map_is_typed_and_pool_recovers(self):
        from repro.errors import ReproError, WorkerCrashError
        from repro.parallel import ProcessExecutor

        with ProcessExecutor(2) as ex:
            with FaultInjector(seed=9).inject(
                "parallel.worker_crash", times=1
            ).install():
                with pytest.raises(WorkerCrashError) as excinfo:
                    ex.map(str, range(4))
            assert isinstance(excinfo.value, ReproError)
            # The pool is rebuilt (post-uninstall fork): still usable.
            assert ex.map(str, [7]) == ["7"]

    def test_killed_process_job_worker_fails_the_job_cleanly(self):
        import multiprocessing

        relation = chaos_relation(seed=18)
        with start_in_thread(workers=2, executor="process",
                             job_timeout=60.0) as handle:
            client = ServiceClient(handle.base_url, retry=None, timeout=30.0)
            client.wait_until_healthy()
            with FaultInjector(seed=10).inject(
                "parallel.worker_crash", times=1
            ).install():
                envelope = client.discover_raw(relation, wait=False)
                job = handle.service.jobs.get(envelope["job_id"])
                assert job.wait(timeout=30) == "failed"
            assert "WorkerCrashError" in job.error
            assert "exit code 3" in job.error
            # Typed outcome for pollers, and no hung jobs behind it.
            assert client.job(envelope["job_id"])["state"] == "failed"
            assert_no_hung_jobs(handle)
        # The dead worker was reaped: nothing of ours is left running.
        assert not [
            p for p in multiprocessing.active_children()
            if p.name.startswith("repro-job-worker")
        ]


class TestStorageChaos:
    """``disk.enospc`` / ``disk.eio``: storage faults degrade, never 500.

    Every durable writer (job journal, session checkpoints, obs JSONL)
    is armed with disk faults while real requests flow through a live
    server with a non-retrying client — so any 500 would surface as a
    hard ServiceError. The claims: requests keep succeeding, statusz
    stays HTTP 200 but reports ``degraded`` storage, and once the fault
    clears a flush drains the parked writes and health recovers.
    """

    def test_enospc_storm_degrades_journal_not_requests(self, tmp_path):
        with start_in_thread(workers=2, job_timeout=60.0,
                             journal_dir=str(tmp_path)) as handle:
            client = ServiceClient(handle.base_url, retry=None, timeout=30.0)
            client.wait_until_healthy()
            with FaultInjector(seed=21).inject(
                "disk.enospc", times=None
            ).install():
                # Every journal append hits ENOSPC; submits still work.
                for i in range(3):
                    result = client.discover(chaos_relation(seed=40 + i))
                    assert FD(["a0"], "a1") in set(result.fds)
                status = client.statusz()
                assert status["status"] == "degraded"
                assert status["checks"]["storage"] == "degraded"
                assert "journal" in status["storage"]["degraded_writers"]
                buffered = handle.service.jobs.journal_writer.status()["buffered"]
                assert buffered > 0
            # Disk healed: the backlog flushes and health recovers.
            assert handle.service.jobs.journal_writer.flush()
            status = client.statusz()
            assert status["status"] == "ok"
            assert status["checks"]["storage"] == "ok"
            assert_no_hung_jobs(handle)

    def test_eio_on_checkpoint_returns_degraded_body_not_500(self, tmp_path):
        with start_in_thread(workers=2, job_timeout=60.0,
                             checkpoint_dir=str(tmp_path)) as handle:
            client = ServiceClient(handle.base_url, retry=None, timeout=30.0)
            client.wait_until_healthy()
            sid = client.create_session()
            client.append_batch(sid, chaos_relation(seed=50, n=80))
            with FaultInjector(seed=22).inject(
                "disk.eio", times=None
            ).install():
                body = client.checkpoint_session(sid)  # 200, not 500
                assert body["persisted"] is False
                status = client.statusz()
                assert status["status"] == "degraded"
                assert "checkpoints" in status["storage"]["degraded_writers"]
            assert handle.service.sessions.writer.flush()
            body = client.checkpoint_session(sid)
            assert body["persisted"] is True
            status = client.statusz()
            assert status["status"] == "ok"
            assert_no_hung_jobs(handle)

    def test_obs_sink_faults_never_touch_request_path(self, tmp_path):
        obs_path = str(tmp_path / "events.jsonl")
        with start_in_thread(workers=2, job_timeout=60.0,
                             obs_jsonl=obs_path) as handle:
            client = ServiceClient(handle.base_url, retry=None, timeout=30.0)
            client.wait_until_healthy()
            with FaultInjector(seed=23).inject(
                "disk.enospc", times=None
            ).install():
                result = client.discover(chaos_relation(seed=60))
                assert FD(["a0"], "a1") in set(result.fds)
                status = client.statusz()
                assert status["status"] == "degraded"
                assert "obs_jsonl" in status["storage"]["degraded_writers"]
            assert handle.service._obs_sink.writer.flush()
            assert client.statusz()["status"] == "ok"
            # The parked request events made it to disk after recovery.
            with open(obs_path, encoding="utf-8") as fh:
                assert sum(1 for _ in fh) > 0
            assert_no_hung_jobs(handle)
