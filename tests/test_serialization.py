"""Round-trip serialization of FD / FDXResult (the service wire formats).

``to_dict -> json -> from_dict`` must be the identity on the dict
projection: the service ships results as JSON and clients rebuild
:class:`FDXResult` objects from them.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FD
from repro.core.fdx import FDX, FDXResult
from repro.dataset.relation import Relation

# --- strategies -----------------------------------------------------------

attr_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=4),
    min_size=2, max_size=6, unique=True,
)


@st.composite
def fds(draw):
    names = draw(attr_names)
    rhs = draw(st.sampled_from(names))
    candidates = [n for n in names if n != rhs]
    lhs = draw(st.lists(st.sampled_from(candidates), min_size=1, unique=True))
    return FD(lhs, rhs)


#: Pipeline stages reported in ``diagnostics["stage_seconds"]``.
STAGES = ("transform", "covariance", "glasso", "factorization", "fd_generation")


@st.composite
def fdx_results(draw):
    names = draw(attr_names)
    p = len(names)
    auto = draw(
        st.lists(
            st.lists(st.floats(-2.0, 2.0, allow_nan=False), min_size=p, max_size=p),
            min_size=p, max_size=p,
        )
    )
    result_fds = []
    for rhs in names:
        candidates = [n for n in names if n != rhs]
        lhs = draw(st.lists(st.sampled_from(candidates), unique=True))
        if lhs:
            result_fds.append(FD(lhs, rhs))
    stage_seconds = {
        stage: draw(st.floats(0, 5, allow_nan=False)) for stage in STAGES
    }
    return FDXResult(
        fds=result_fds,
        attribute_order=list(draw(st.permutations(names))),
        autoregression=np.asarray(auto),
        precision=np.eye(p),
        covariance=np.eye(p),
        transform_seconds=draw(st.floats(0, 10, allow_nan=False)),
        model_seconds=draw(st.floats(0, 10, allow_nan=False)),
        n_pair_samples=draw(st.integers(0, 10**6)),
        diagnostics={
            "n_batches": draw(st.integers(0, 5)),
            "stage_seconds": stage_seconds,
            "final_objective": draw(
                st.one_of(st.none(), st.floats(-1e6, 1e6, allow_nan=False))
            ),
        },
    )


# --- FD -------------------------------------------------------------------

@given(fds())
def test_fd_roundtrip(fd):
    assert FD.from_dict(json.loads(json.dumps(fd.to_dict()))) == fd


@pytest.mark.parametrize("payload", [
    {}, {"lhs": ["a"]}, {"rhs": "b"}, {"lhs": "a", "rhs": "b"},
    {"lhs": ["a"], "rhs": ["b"]}, None, "a -> b",
])
def test_fd_from_dict_rejects_malformed(payload):
    with pytest.raises(ValueError):
        FD.from_dict(payload)


def test_fd_from_dict_canonicalizes_lhs():
    fd = FD.from_dict({"lhs": ["b", "a", "b"], "rhs": "c"})
    assert fd.lhs == ("a", "b")


# --- FDXResult ------------------------------------------------------------

@settings(max_examples=50)
@given(fdx_results())
def test_fdxresult_dict_roundtrip(result):
    wire = json.loads(json.dumps(result.to_dict()))
    rebuilt = FDXResult.from_dict(wire)
    assert rebuilt.to_dict() == result.to_dict()
    assert rebuilt.fds == result.fds
    assert rebuilt.attribute_order == result.attribute_order
    assert np.allclose(rebuilt.autoregression, result.autoregression)


@settings(max_examples=25)
@given(fdx_results())
def test_fdxresult_roundtrips_observability_diagnostics(result):
    """stage_seconds and final_objective survive the wire exactly."""
    rebuilt = FDXResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.diagnostics["stage_seconds"] == result.diagnostics["stage_seconds"]
    assert rebuilt.diagnostics["final_objective"] == result.diagnostics["final_objective"]


def test_real_discovery_reports_stage_breakdown():
    rows = [(f"z{i % 7}", f"c{i % 7}", f"s{i % 2}") for i in range(300)]
    rel = Relation.from_rows(["zip", "city", "state"], rows)
    result = FDX().discover(rel)
    stage_seconds = result.diagnostics["stage_seconds"]
    assert set(stage_seconds) == {
        "transform", "covariance", "glasso", "factorization", "fd_generation"
    }
    assert all(seconds >= 0 for seconds in stage_seconds.values())
    # The per-stage breakdown accounts for the reported total.
    assert sum(stage_seconds.values()) <= result.total_seconds * 1.10
    assert sum(stage_seconds.values()) >= result.total_seconds * 0.90
    assert isinstance(result.diagnostics["final_objective"], float)
    rebuilt = FDXResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.diagnostics == result.diagnostics


def test_fdxresult_roundtrip_from_real_discovery():
    rows = [(f"z{i % 7}", f"c{i % 7}", f"s{i % 2}") for i in range(300)]
    rel = Relation.from_rows(["zip", "city", "state"], rows)
    result = FDX().discover(rel)
    rebuilt = FDXResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.to_dict() == result.to_dict()
    assert set(rebuilt.fds) == set(result.fds)
    # Placeholders (identity) stand in for the omitted dense matrices.
    assert rebuilt.precision.shape == (3, 3)


#: Every diagnostics key a fully-instrumented FDX.discover produces
#: (tracing enabled adds glasso_objective_trace; track_memory adds
#: stage_bytes). A new diagnostics key must be added here, which makes
#: the completeness test below fail until it provably round-trips.
FULL_DIAGNOSTICS_KEYS = (
    "glasso_iterations",
    "glasso_converged",
    "final_objective",
    "stage_seconds",
    "stage_bytes",
    "glasso_objective_trace",
    "degraded",
    "fallback_chain",
    # Always present: which parallel backend/worker count served the run
    # (serial runs record backend="serial"), so results stay comparable.
    "parallel",
    # Per-FD evidence ledger and per-run solver telemetry (explain layer).
    "evidence",
    "solver_health",
    # The fixture's zip/city columns are value-for-value duplicates, so
    # the input guards flag them (a real warning, useful here: it makes
    # the round-trip of input_warnings part of this completeness check).
    "input_warnings",
)


@pytest.fixture(scope="module")
def instrumented_result():
    from repro.obs import Tracer

    rows = [(f"z{i % 7}", f"c{i % 7}", f"s{i % 2}") for i in range(300)]
    rel = Relation.from_rows(["zip", "city", "state"], rows)
    return FDX(tracer=Tracer(enabled=True), track_memory=True).discover(rel)


def test_instrumented_diagnostics_keys_are_exactly_the_known_set(
    instrumented_result,
):
    assert set(instrumented_result.diagnostics) == set(FULL_DIAGNOSTICS_KEYS)


@pytest.mark.parametrize("key", FULL_DIAGNOSTICS_KEYS)
def test_every_diagnostics_key_survives_roundtrip(instrumented_result, key):
    """No diagnostics key may silently drop on the wire (per-key check)."""
    wire = json.loads(json.dumps(instrumented_result.to_dict()))
    rebuilt = FDXResult.from_dict(wire)
    assert key in rebuilt.diagnostics
    assert rebuilt.diagnostics[key] == instrumented_result.diagnostics[key]


def test_fdxresult_from_dict_optional_matrices():
    result = FDX().discover(
        Relation.from_rows(["a", "b"], [(i % 4, i % 2) for i in range(200)])
    )
    wire = result.to_dict()
    wire["precision"] = result.precision.tolist()
    wire["covariance"] = result.covariance.tolist()
    rebuilt = FDXResult.from_dict(wire)
    assert np.allclose(rebuilt.precision, result.precision)
    assert np.allclose(rebuilt.covariance, result.covariance)


def test_fdxresult_from_dict_rejects_malformed():
    with pytest.raises(ValueError):
        FDXResult.from_dict("not a dict")
    with pytest.raises(ValueError):
        FDXResult.from_dict({"fds": []})  # missing attribute_order etc.


def test_fdxresult_empty_relation_roundtrip():
    result = FDXResult(
        fds=[], attribute_order=[], autoregression=np.zeros((0, 0)),
        precision=np.zeros((0, 0)), covariance=np.zeros((0, 0)),
        transform_seconds=0.0, model_seconds=0.0, n_pair_samples=0,
    )
    rebuilt = FDXResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.to_dict() == result.to_dict()
    assert rebuilt.autoregression.shape == (0, 0)
