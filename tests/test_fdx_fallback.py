"""Degraded-mode pipeline: input guards and the solver fallback ladder."""

import numpy as np
import pytest

from repro import FDX, Relation
from repro.core.fdx import validate_relation
from repro.core.structure import learn_structure, learn_structure_resilient
from repro.errors import (
    DegenerateColumnError,
    EmptyRelationError,
    InputValidationError,
    InsufficientRowsError,
)
from repro.resilience import FaultInjector


def fd_relation(n=120):
    rows = [(i % 6, (i % 6) // 2, i % 4) for i in range(n)]
    return Relation.from_rows(["a", "b", "c"], rows)


# -- input guards ------------------------------------------------------------

def test_empty_relation_raises_typed_error():
    rel = Relation.from_rows(["a", "b"], [])
    with pytest.raises(EmptyRelationError, match="no rows"):
        FDX().discover(rel)
    # Catchable as both the family base and the stdlib type.
    with pytest.raises(InputValidationError):
        FDX().discover(rel)
    with pytest.raises(ValueError):
        FDX().discover(rel)


def test_single_row_relation_raises_typed_error():
    rel = Relation.from_rows(["a", "b"], [(1, 2)])
    with pytest.raises(InsufficientRowsError, match="at least two rows"):
        FDX().discover(rel)


def test_degenerate_columns_warn_but_discover():
    rows = [(9, i % 4, i % 4, None) for i in range(40)]
    rel = Relation.from_rows(["const", "x", "dup_x", "missing"], rows)
    result = FDX().discover(rel)
    warnings = result.diagnostics["input_warnings"]
    text = " ".join(warnings)
    assert "'const' is constant" in text
    assert "duplicates column" in text
    assert "entirely missing" in text


def test_strict_mode_rejects_degenerate_columns():
    rows = [(9, i % 4) for i in range(40)]
    rel = Relation.from_rows(["const", "x"], rows)
    with pytest.raises(DegenerateColumnError) as excinfo:
        FDX(strict=True).discover(rel)
    assert excinfo.value.findings
    assert "const" in str(excinfo.value)


def test_validate_relation_clean_input_returns_no_warnings():
    assert validate_relation(fd_relation()) == []


def test_non_finite_samples_raise_input_validation_error():
    bad = np.array([[1.0, np.nan], [0.5, 1.0]])
    with pytest.raises(InputValidationError, match="non-finite"):
        learn_structure(bad)
    # The ladder must NOT swallow validation errors.
    with pytest.raises(InputValidationError):
        learn_structure_resilient(bad)


# -- fallback ladder ---------------------------------------------------------

def test_healthy_input_is_not_degraded():
    result = FDX().discover(fd_relation())
    assert result.diagnostics["degraded"] is False
    chain = result.diagnostics["fallback_chain"]
    assert [entry["stage"] for entry in chain] == ["configured"]
    assert chain[0]["ok"] is True


def test_glasso_nonconvergence_engages_ladder():
    # max_iter=1 cannot converge on this input; the ladder must walk to
    # neighborhood selection and still deliver a result (the satellite
    # regression test for the non-convergence path).
    result = FDX(glasso_max_iter=1).discover(fd_relation())
    assert result.diagnostics["degraded"] is True
    chain = result.diagnostics["fallback_chain"]
    stages = [entry["stage"] for entry in chain]
    assert stages == ["configured", "reconditioned", "neighborhood"]
    assert [entry["ok"] for entry in chain] == [False, False, True]
    assert chain[0]["reason"] == "converged=False"
    # Boosted penalty recorded for the retry rung.
    assert chain[1]["lam"] == pytest.approx(chain[0]["lam"] * 5.0)
    assert result.fds is not None and result.autoregression.shape == (3, 3)


def test_injected_nonconvergence_engages_ladder():
    with FaultInjector(seed=0).inject("glasso.nonconverge", times=None).install():
        result = FDX().discover(fd_relation())
    assert result.diagnostics["degraded"] is True
    assert result.diagnostics["fallback_chain"][-1]["stage"] == "neighborhood"


def test_reconditioned_rung_recovers_before_neighborhood():
    # Fault only the first glasso attempt: the reconditioned retry (rung
    # 2) converges and the ladder stops there.
    with FaultInjector(seed=0).inject("glasso.nonconverge", times=1).install():
        result = FDX().discover(fd_relation())
    assert result.diagnostics["degraded"] is True
    chain = result.diagnostics["fallback_chain"]
    assert [entry["stage"] for entry in chain] == ["configured", "reconditioned"]
    assert chain[-1]["ok"] is True


def test_resilient_off_keeps_raw_solver_behaviour():
    result = FDX(glasso_max_iter=1, resilient=False).discover(fd_relation())
    assert result.diagnostics["glasso_converged"] is False
    assert result.diagnostics["degraded"] is False
    assert "fallback_chain" not in result.diagnostics


def test_ladder_synthesizes_identity_when_everything_raises(monkeypatch):
    import repro.core.structure as structure_mod

    def always_boom(*args, **kwargs):
        raise np.linalg.LinAlgError("synthetic solver failure")

    monkeypatch.setattr(structure_mod, "learn_structure", always_boom)
    samples = np.random.default_rng(0).normal(size=(50, 4))
    estimate = learn_structure_resilient(samples)
    assert estimate.degraded is True
    assert estimate.fallback_chain[-1]["stage"] == "identity"
    assert np.array_equal(estimate.precision, np.eye(4))
    # An identity model yields no FDs but a perfectly valid estimate.
    assert np.allclose(estimate.factorization.autoregression, 0.0)


def test_ladder_with_neighborhood_estimator_configured():
    samples = np.random.default_rng(0).normal(size=(80, 4))
    estimate = learn_structure_resilient(samples, estimator="neighborhood")
    assert estimate.degraded is False
    assert estimate.fallback_chain[0]["estimator"] == "neighborhood"


def test_degraded_result_round_trips_over_wire():
    result = FDX(glasso_max_iter=1).discover(fd_relation())
    from repro.core.fdx import FDXResult

    payload = result.to_dict()
    rebuilt = FDXResult.from_dict(payload)
    assert rebuilt.diagnostics["degraded"] is True
    assert rebuilt.diagnostics["fallback_chain"] == result.diagnostics["fallback_chain"]
