"""Tests for repro.resilience.watchdog (heartbeats, hung-solve detection)."""

import multiprocessing
import time

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import CancelledError, CancelToken
from repro.resilience.watchdog import (
    Heartbeat,
    SolveWatchdog,
    current_heartbeat,
    set_current_heartbeat,
)


class FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self):
        return self.now


# -- Heartbeat ---------------------------------------------------------------

def test_heartbeat_thread_cell_round_trip():
    hb = Heartbeat()
    before = hb.last_beat()
    hb.beat()
    assert hb.last_beat() >= before


def test_heartbeat_injected_clock():
    hb = Heartbeat()
    hb.beat(clock=lambda: 123.0)
    assert hb.last_beat() == 123.0


def test_heartbeat_shared_cell_visible_across_rebuild():
    ctx = multiprocessing.get_context("spawn")
    hb = Heartbeat.shared(ctx)
    assert hb.last_beat() > 0.0  # initialized to "now", not zero
    # Simulate the child side: rebuild from the raw cell and beat there.
    child_side = Heartbeat(hb.raw)
    child_side.beat(clock=lambda: 777.0)
    assert hb.last_beat() == 777.0


def test_heartbeat_contextvar_install_and_reset():
    assert current_heartbeat() is None
    hb = Heartbeat()
    token = set_current_heartbeat(hb)
    try:
        assert current_heartbeat() is hb
    finally:
        set_current_heartbeat(None)
    assert current_heartbeat() is None
    assert token is not None


# -- SolveWatchdog -----------------------------------------------------------

def test_quiet_heartbeat_is_declared_hung_and_token_set():
    clock = FakeClock()
    watchdog = SolveWatchdog(hang_timeout=5.0, clock=clock)
    hb = Heartbeat()
    hb.beat(clock=clock)
    token = CancelToken()
    watchdog.watch("job-1", hb, token)

    clock.now += 4.9
    assert watchdog.check_now() == []
    assert not token.is_set()

    clock.now += 0.2
    assert watchdog.check_now() == ["job-1"]
    assert token.is_set()
    with pytest.raises(CancelledError) as err:
        token.raise_if_cancelled()
    assert "hung: no solver progress in 5s" in str(err.value)
    assert watchdog.unwatch("job-1") is True


def test_beating_heartbeat_never_hangs():
    clock = FakeClock()
    watchdog = SolveWatchdog(hang_timeout=5.0, clock=clock)
    hb = Heartbeat()
    token = CancelToken()
    watchdog.watch("job-1", hb, token)
    for _ in range(10):
        clock.now += 3.0
        hb.beat(clock=clock)
        assert watchdog.check_now() == []
    assert not token.is_set()
    assert watchdog.unwatch("job-1") is False


def test_registration_time_grace_before_first_beat():
    # A job that has not beaten yet is measured from registration, so a
    # queued-then-started job is not instantly "hung" on a stale cell.
    clock = FakeClock()
    watchdog = SolveWatchdog(hang_timeout=5.0, clock=clock)
    hb = Heartbeat(clock=lambda: 0.0)  # cell far in the past
    token = CancelToken()
    watchdog.watch("job-1", hb, token)
    clock.now += 4.0
    assert watchdog.check_now() == []
    clock.now += 2.0
    assert watchdog.check_now() == ["job-1"]


def test_hang_fires_once_and_counts():
    clock = FakeClock()
    registry = MetricsRegistry()
    hangs = []
    watchdog = SolveWatchdog(hang_timeout=1.0, clock=clock, registry=registry,
                             on_hang=hangs.append)
    watchdog.watch("job-1", Heartbeat(clock=clock), CancelToken())
    clock.now += 2.0
    assert watchdog.check_now() == ["job-1"]
    assert watchdog.check_now() == []  # already marked, no re-fire
    assert hangs == ["job-1"]
    assert watchdog.hangs_total == 1
    assert registry.counter("watchdog_hangs_total").value == 1


def test_per_watch_timeout_override():
    clock = FakeClock()
    watchdog = SolveWatchdog(hang_timeout=60.0, clock=clock)
    fast, slow = CancelToken(), CancelToken()
    watchdog.watch("fast", Heartbeat(clock=clock), fast, hang_timeout=2.0)
    watchdog.watch("slow", Heartbeat(clock=clock), slow)
    clock.now += 3.0
    assert watchdog.check_now() == ["fast"]
    assert fast.is_set() and not slow.is_set()


def test_unwatch_unknown_name_is_false():
    watchdog = SolveWatchdog(hang_timeout=1.0)
    assert watchdog.unwatch("ghost") is False


def test_interval_defaults_to_quarter_timeout_clamped():
    assert SolveWatchdog(hang_timeout=2.0).interval == 0.5
    assert SolveWatchdog(hang_timeout=100.0).interval == 1.0
    assert SolveWatchdog(hang_timeout=0.1).interval == 0.05
    assert SolveWatchdog(hang_timeout=8.0, interval=0.2).interval == 0.2


def test_hang_timeout_validation():
    with pytest.raises(ValueError):
        SolveWatchdog(hang_timeout=0.0)


def test_monitor_thread_detects_real_stall():
    watchdog = SolveWatchdog(hang_timeout=0.2, interval=0.05)
    watchdog.start()
    try:
        hb = Heartbeat()
        token = CancelToken()
        watchdog.watch("job-1", hb, token)
        deadline = time.monotonic() + 5.0
        while not token.is_set() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert token.is_set(), "watchdog thread never fired"
        assert watchdog.unwatch("job-1") is True
    finally:
        watchdog.stop()
    assert watchdog.stats()["running"] is False


def test_stats_shape():
    clock = FakeClock()
    watchdog = SolveWatchdog(hang_timeout=3.0, clock=clock)
    watchdog.watch("a", Heartbeat(clock=clock), CancelToken())
    stats = watchdog.stats()
    assert stats["watching"] == 1
    assert stats["hang_timeout"] == 3.0
    assert stats["hangs_total"] == 0
