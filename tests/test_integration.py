"""End-to-end integration tests across modules (the paper's main claims at
reduced scale)."""

import numpy as np
import pytest

from repro.baselines import Cords, GlassoRaw, Pyro, Rfi, Tane
from repro.core.fd import FD
from repro.core.fdx import FDX
from repro.datagen.realworld import hospital
from repro.datagen.synthetic import SyntheticSpec, generate
from repro.metrics.evaluation import score_fds
from repro.pgm.repository import asia
from repro.prep.imputation import AttentionImputer
from repro.prep.profiling import imputability_experiment, split_by_fd_participation


@pytest.fixture(scope="module")
def synthetic_ds():
    return generate(SyntheticSpec(n_tuples=1200, n_attributes=12, seed=11,
                                  domain_low=16, domain_high=64, noise_rate=0.05))


def test_fdx_beats_syntactic_baselines_on_synthetic(synthetic_ds):
    """The paper's headline: FDX > PYRO/TANE F1 on noisy synthetic data."""
    rel, truth = synthetic_ds.relation, synthetic_ds.true_fds
    fdx_f1 = score_fds(FDX().discover(rel).fds, truth).f1
    pyro_f1 = score_fds(Pyro(max_error=0.05).discover(rel).fds, truth).f1
    tane_f1 = score_fds(Tane(max_error=0.05).discover(rel).fds, truth).f1
    assert fdx_f1 > pyro_f1
    assert fdx_f1 > tane_f1
    assert fdx_f1 >= 0.6


def test_fdx_distinguishes_fds_from_correlations(synthetic_ds):
    """The generator embeds strong correlations; FDX must not report most
    of them as FDs (CORDS does — paper §5.3)."""
    rel = synthetic_ds.relation
    correlation_rhs = {g.rhs for g in synthetic_ds.groups if g.kind == "correlation"}
    res = FDX().discover(rel)
    flagged = sum(1 for fd in res.fds if fd.rhs in correlation_rhs)
    assert flagged <= len(correlation_rhs) // 2 + 1


def test_fdx_on_bayesian_network_beats_half_f1():
    bn = asia(seed=0)
    rel = bn.sample(2000, np.random.default_rng(1))
    f1 = score_fds(FDX().discover(rel).fds, bn.true_fds()).f1
    assert f1 >= 0.5


def test_transform_ablation_uniform_is_worse_on_high_cardinality():
    """Ablation: Algorithm 2's sorted circular shift beats uniform pair
    sampling when domains are large (paper §4.1's justification).

    Averaged over seeds — on a single instance either variant can get
    lucky. The gap appears when domains *exceed* the row count: uniform
    pairs then almost never agree on a determinant, while the sorted
    circular shift still pairs up the few duplicates.
    """
    circ_scores, unif_scores = [], []
    for seed in (3, 4, 5):
        ds = generate(SyntheticSpec(n_tuples=400, n_attributes=8, seed=seed,
                                    domain_low=1000, domain_high=1728, noise_rate=0.0))
        truth = ds.true_fds
        circ_scores.append(
            score_fds(FDX(transform="circular").discover(ds.relation).fds, truth).f1
        )
        unif_scores.append(
            score_fds(FDX(transform="uniform").discover(ds.relation).fds, truth).f1
        )
    assert np.mean(circ_scores) >= np.mean(unif_scores) - 0.05


def test_parsimony_fdx_vs_exhaustive(synthetic_ds):
    """FDX emits at most one FD per attribute; TANE's output is larger."""
    rel = synthetic_ds.relation
    fdx_fds = FDX().discover(rel).fds
    tane_fds = Tane(max_error=0.05).discover(rel).fds
    assert len(fdx_fds) <= rel.n_attributes
    assert len(tane_fds) >= len(fdx_fds)


def test_hospital_profile_finds_entity_fds():
    ds = hospital()
    res = FDX().discover(ds.relation)
    rhs_map = {fd.rhs: fd for fd in res.fds}
    # The paper highlights MeasureCode/MeasureName and city/county relations.
    assert "MeasureName" in rhs_map or "MeasureCode" in rhs_map
    assert len(res.fds) <= ds.relation.n_attributes


def test_cleaning_signal_fd_attributes_impute_better():
    """Table 7's claim end to end on Hospital."""
    ds = hospital()
    result = FDX().discover(ds.relation)
    with_fd, without_fd = split_by_fd_participation(result, ds.relation.schema.names)
    assert with_fd and without_fd

    def group_f1(attrs):
        scores = []
        for attr in attrs[:4]:
            out = imputability_experiment(
                ds.relation, attr, AttentionImputer(), "random", seed=0
            )
            if out.n_hidden:
                scores.append(out.f1)
        return float(np.median(scores)) if scores else 0.0

    assert group_f1(with_fd) > group_f1(without_fd)


def test_rfi_and_gl_return_parsimonious_sets(synthetic_ds):
    rel = synthetic_ds.relation
    rfi_fds = Rfi(alpha=0.3, beam_width=4, max_lhs_size=2).discover(rel).fds
    gl_fds = GlassoRaw().discover(rel).fds
    assert len(rfi_fds) <= rel.n_attributes
    assert len(gl_fds) <= rel.n_attributes


def test_cords_finds_only_pairwise(synthetic_ds):
    fds = Cords().discover(synthetic_ds.relation).fds
    assert all(fd.arity == 1 for fd in fds)


def test_fdx_quadratic_not_exponential_in_columns():
    """Doubling columns must not explode runtime (sanity for Figure 6)."""
    import time

    times = []
    for r in (6, 12):
        ds = generate(SyntheticSpec(n_tuples=400, n_attributes=r, seed=1))
        t0 = time.perf_counter()
        FDX().discover(ds.relation)
        times.append(time.perf_counter() - t0)
    assert times[1] < times[0] * 30
