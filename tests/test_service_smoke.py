"""Tier-2 smoke test: the real `python -m repro serve` process end to end.

Runs ``scripts/smoke_service.sh`` (server subprocess + client round
trips) and is excluded from the default tier-1 run by the ``tier2``
marker; select it with ``pytest -m tier2``.
"""

import pathlib
import shutil
import subprocess

import pytest

SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "smoke_service.sh"


@pytest.mark.tier2
def test_smoke_service_script():
    bash = shutil.which("bash")
    if bash is None:
        pytest.skip("bash not available")
    completed = subprocess.run(
        [bash, str(SCRIPT)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, (
        f"smoke script failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert "smoke_service: OK" in completed.stdout
