"""Property-based tests for the constraints subpackage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.denial import (
    DenialConstraint,
    DenialConstraintDiscovery,
    Predicate,
    check_denial_constraint,
)
from repro.constraints.keys import is_certain_key, is_possible_key
from repro.dataset.relation import MISSING, Relation

rows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)),
    min_size=2, max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_discovered_dcs_have_zero_violation_on_input(rows):
    rel = Relation.from_rows(["a", "b"], rows)
    res = DenialConstraintDiscovery(n_pairs=500, seed=1).discover(rel)
    for dc in res.constraints:
        assert check_denial_constraint(rel, dc, n_pairs=500, seed=1) == 0.0


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_dc_minimality_property(rows):
    rel = Relation.from_rows(["a", "b"], rows)
    res = DenialConstraintDiscovery(n_pairs=300).discover(rel)
    sets = [frozenset(dc.predicates) for dc in res.constraints]
    for x in sets:
        for y in sets:
            assert x == y or not (x < y)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.one_of(st.integers(0, 5), st.none()), min_size=2, max_size=25))
def test_certain_key_implies_possible_key(values):
    rel = Relation.from_rows(["x"], [(v,) for v in values])
    if is_certain_key(rel, ["x"]):
        assert is_possible_key(rel, ["x"])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.one_of(st.integers(0, 3), st.none()),
                          st.one_of(st.integers(0, 3), st.none())),
                min_size=2, max_size=20))
def test_superset_of_possible_key_still_possible(rows):
    """Adding attributes can only help uniqueness."""
    rel = Relation.from_rows(["x", "y"], rows)
    if is_possible_key(rel, ["x"]):
        assert is_possible_key(rel, ["x", "y"])
    if is_certain_key(rel, ["x"]):
        assert is_certain_key(rel, ["x", "y"])


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_fd_shaped_dc_consistent_with_g3(rows):
    """If the FD-shaped DC on (a=, b!=) is discovered exactly, the FD's g3
    error on complete rows must be zero."""
    rel = Relation.from_rows(["a", "b"], rows)
    res = DenialConstraintDiscovery(n_pairs=2000, seed=0).discover(rel)
    target = DenialConstraint((Predicate("a", "="), Predicate("b", "!=")))
    if target in res.constraints:
        from repro.baselines.partitions import (
            Partition,
            column_codes,
            fd_error_g3,
        )

        part = Partition.for_attributes(rel, ["a"])
        # The discovery samples pairs with replacement, so rare violations
        # can escape it — but a *mostly*-violated FD cannot.
        assert fd_error_g3(part, column_codes(rel, "b")) < 0.3
