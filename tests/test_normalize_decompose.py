"""Tests for repro.normalize.decompose (BCNF / 3NF)."""

import pytest

from repro.core.fd import FD
from repro.normalize.closure import implies
from repro.normalize.decompose import (
    bcnf_decompose,
    is_lossless,
    preserves_dependencies,
    synthesize_3nf,
    violates_bcnf,
)

SCHEMA = ["A", "B", "C", "D"]
FDS = [FD(["A"], "B"), FD(["B"], "C")]  # key is {A, D}


def test_violates_bcnf():
    assert violates_bcnf(FD(["B"], "C"), SCHEMA, FDS)
    assert not violates_bcnf(FD(["A", "D"], "B"), SCHEMA, FDS + [FD(["A", "D"], "B")])


def test_bcnf_fragments_have_no_violations():
    dec = bcnf_decompose(SCHEMA, FDS)
    for fragment, local in zip(dec.fragments, dec.fds_per_fragment):
        for fd in local:
            assert not violates_bcnf(fd, sorted(fragment), local), (fragment, fd)


def test_bcnf_covers_all_attributes():
    dec = bcnf_decompose(SCHEMA, FDS)
    assert set().union(*dec.fragments) == set(SCHEMA)


def test_bcnf_is_lossless():
    dec = bcnf_decompose(SCHEMA, FDS)
    assert is_lossless(SCHEMA, FDS, dec.fragments)


def test_bcnf_no_fds_returns_whole_schema():
    dec = bcnf_decompose(SCHEMA, [])
    assert dec.fragments == [frozenset(SCHEMA)]


def test_3nf_is_lossless_and_dependency_preserving():
    dec = synthesize_3nf(SCHEMA, FDS)
    assert is_lossless(SCHEMA, FDS, dec.fragments)
    assert preserves_dependencies(FDS, dec.fragments)


def test_3nf_covers_all_attributes():
    dec = synthesize_3nf(SCHEMA, FDS)
    assert set().union(*dec.fragments) == set(SCHEMA)


def test_3nf_groups_by_determinant():
    fds = [FD(["A"], "B"), FD(["A"], "C")]
    dec = synthesize_3nf(["A", "B", "C"], fds)
    assert frozenset({"A", "B", "C"}) in dec.fragments


def test_classic_dependency_loss_example():
    """R(City, Street, Zip): {City,Street}->Zip, Zip->City.
    BCNF decomposition loses {City,Street}->Zip; 3NF keeps it."""
    schema = ["City", "Street", "Zip"]
    fds = [FD(["City", "Street"], "Zip"), FD(["Zip"], "City")]
    bcnf = bcnf_decompose(schema, fds)
    assert is_lossless(schema, fds, bcnf.fragments)
    assert not preserves_dependencies(fds, bcnf.fragments)
    tnf = synthesize_3nf(schema, fds)
    assert is_lossless(schema, fds, tnf.fragments)
    assert preserves_dependencies(fds, tnf.fragments)


def test_is_lossless_detects_lossy_split():
    # Splitting R(A,B,C) into {A,B} and {A,C} with only B->C is lossy.
    schema = ["A", "B", "C"]
    fds = [FD(["B"], "C")]
    assert not is_lossless(schema, fds, [frozenset("AB"), frozenset("AC")])
    # With A->B it becomes lossless ({A} is a key of the left fragment).
    fds2 = [FD(["A"], "B"), FD(["B"], "C")]
    assert is_lossless(schema, fds2, [frozenset("AB"), frozenset("BC")])


def test_preserves_dependencies_positive():
    fragments = [frozenset("AB"), frozenset("BC")]
    assert preserves_dependencies(FDS, fragments)


def test_end_to_end_with_discovered_fds():
    """Normalize the hospital schema using FDX-discovered FDs."""
    from repro import FDX
    from repro.datagen import hospital

    ds = hospital()
    result = FDX().discover(ds.relation)
    schema = ds.relation.schema.names
    dec = synthesize_3nf(schema, result.fds)
    assert set().union(*dec.fragments) == set(schema)
    assert is_lossless(schema, result.fds, dec.fragments)
    assert preserves_dependencies(result.fds, dec.fragments)
    # Normalization actually splits the universal relation.
    assert len(dec.fragments) >= 2
