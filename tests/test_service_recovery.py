"""Crash-recovery integration: JobManager replay, quarantine, resubmission.

These tests simulate a crash by creating a second :class:`JobManager`
(or :class:`DiscoveryService`) over the same journal directory without
shutting the first one down cleanly mid-flight — exactly what a new
process sees after ``kill -9``.
"""

import threading
import time

import numpy as np
import pytest

from repro.dataset.relation import Relation
from repro.resilience import FaultInjector
from repro.service.jobs import (
    DONE,
    INTERRUPTED,
    QUARANTINED,
    JobManager,
    QuarantinedError,
)
from repro.service.protocol import relation_to_wire
from repro.service.server import DiscoveryService


def make_manager(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("default_timeout", 30.0)
    return JobManager(journal_dir=str(tmp_path), **kwargs)


# -- replay: terminal and in-flight jobs -------------------------------------

def test_terminal_jobs_survive_restart_as_restored_metadata(tmp_path):
    m1 = make_manager(tmp_path)
    ok = m1.submit(lambda: 42, key="k-ok")
    assert ok.wait(timeout=10.0) == DONE

    def boom():
        raise ValueError("bad input")

    bad = m1.submit(boom, key="k-bad")
    assert bad.wait(timeout=10.0) == "failed"
    m1.shutdown(wait=True)

    m2 = make_manager(tmp_path)
    try:
        restored_ok = m2.get(ok.id)
        assert restored_ok is not None
        assert restored_ok.state == DONE
        assert restored_ok.to_dict()["restored"] is True
        assert "result" not in restored_ok.to_dict()  # results are not journaled
        restored_bad = m2.get(bad.id)
        assert restored_bad.state == "failed"
        assert "ValueError: bad input" in restored_bad.error
    finally:
        m2.shutdown(wait=False)


def test_in_flight_job_at_crash_is_marked_interrupted(tmp_path):
    release = threading.Event()
    m1 = make_manager(tmp_path, workers=1)
    job = m1.submit(release.wait, key="k-slow", timeout=60.0)
    # Wait until the worker has journaled "started".
    deadline = time.monotonic() + 5.0
    while job.state != "running" and time.monotonic() < deadline:
        time.sleep(0.01)
    assert job.state == "running"
    m1.journal.sync()
    # Simulated kill -9: no shutdown, just a new manager over the journal.

    m2 = make_manager(tmp_path)
    try:
        restored = m2.get(job.id)
        assert restored is not None
        assert restored.state == INTERRUPTED
        assert "restart" in restored.error
        assert len(m2.recovered_interrupted) == 1
        assert m2.recovered_interrupted[0]["job_id"] == job.id
        assert m2.stats()["interrupted_at_boot"] == 1
    finally:
        release.set()
        m2.shutdown(wait=False)
        m1.shutdown(wait=False)


def test_compaction_on_boot_shrinks_journal(tmp_path):
    m1 = make_manager(tmp_path)
    for i in range(10):
        m1.submit(lambda: i).wait(timeout=10.0)
    m1.shutdown(wait=True)
    size_before = (tmp_path / "jobs.jsonl").stat().st_size

    m2 = make_manager(tmp_path)
    try:
        size_after = (tmp_path / "jobs.jsonl").stat().st_size
        assert size_after < size_before  # 30 records -> 10
        assert len([l for l in (tmp_path / "jobs.jsonl").read_text().splitlines()
                    if l]) == 10
    finally:
        m2.shutdown(wait=False)


# -- quarantine --------------------------------------------------------------

def crashy(manager, key):
    """Submit a job whose worker dies with an injected crash."""
    with FaultInjector(seed=1).inject("job.worker", times=1).install():
        job = manager.submit(lambda: 1, key=key)
        job.wait(timeout=10.0)
    return job


def test_repeated_crashes_quarantine_the_key(tmp_path):
    m = make_manager(tmp_path, max_attempts=2)
    try:
        first = crashy(m, "poison")
        assert first.state == "failed"
        assert first.attempt == 1

        second = crashy(m, "poison")
        assert second.state == QUARANTINED
        assert second.attempt == 2
        assert "quarantined after 2 crashed attempt(s)" in second.error
        assert m.quarantined_keys() == {"poison": 2}
        assert m.stats()["quarantined"] == 1

        with pytest.raises(QuarantinedError) as err:
            m.submit(lambda: 1, key="poison")
        assert err.value.key == "poison"
        assert err.value.attempts == 2

        # Other keys are unaffected.
        assert m.submit(lambda: 7, key="healthy").wait(timeout=10.0) == DONE
    finally:
        m.shutdown(wait=False)


def test_quarantine_survives_restart(tmp_path):
    m1 = make_manager(tmp_path, max_attempts=2)
    crashy(m1, "poison")
    job = crashy(m1, "poison")
    assert job.state == QUARANTINED
    m1.shutdown(wait=True)

    m2 = make_manager(tmp_path, max_attempts=2)
    try:
        assert m2.quarantined_keys() == {"poison": 2}
        with pytest.raises(QuarantinedError):
            m2.submit(lambda: 1, key="poison")
        restored = m2.get(job.id)
        assert restored.state == QUARANTINED
    finally:
        m2.shutdown(wait=False)


def test_crash_loop_is_broken_at_boot(tmp_path):
    # A job in flight at crash time that had already burned its attempt
    # budget must be quarantined on boot, not marked for resubmission —
    # otherwise a poison job that kills the whole process loops forever.
    release = threading.Event()
    m1 = make_manager(tmp_path, workers=1, max_attempts=2)
    crashy(m1, "poison")  # attempt 1 burned
    job = m1.submit(release.wait, key="poison", timeout=60.0)
    deadline = time.monotonic() + 5.0
    while job.state != "running" and time.monotonic() < deadline:
        time.sleep(0.01)
    m1.journal.sync()

    m2 = make_manager(tmp_path, max_attempts=2)
    try:
        restored = m2.get(job.id)
        assert restored.state == QUARANTINED
        assert m2.quarantined_keys().get("poison") == 2
        assert m2.recovered_interrupted == []  # not offered for resubmit
    finally:
        release.set()
        m2.shutdown(wait=False)
        m1.shutdown(wait=False)


def test_user_cancel_does_not_burn_attempts(tmp_path):
    m = make_manager(tmp_path, workers=1, max_attempts=1)
    try:
        release = threading.Event()
        job = m.submit(release.wait, key="k", timeout=60.0)
        deadline = time.monotonic() + 5.0
        while job.state != "running" and time.monotonic() < deadline:
            time.sleep(0.01)
        assert m.cancel(job.id)
        release.set()
        job.wait(timeout=10.0)
        assert job.state in ("cancelled", "failed")
        # Even at max_attempts=1, a user cancel is not abnormal.
        assert m.quarantined_keys() == {}
        resub = m.submit(lambda: 5, key="k")
        assert resub.wait(timeout=10.0) == DONE
    finally:
        m.shutdown(wait=False)


# -- service-level recovery --------------------------------------------------

def service_relation(seed=0, n=120, p=4):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(8))
        rows.append(tuple([base, base % 3] + [int(rng.integers(4))
                                              for _ in range(p - 2)]))
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


def submit_async_and_crash(tmp_path):
    """Run a service, submit an async discover, 'crash' before it finishes."""
    svc = DiscoveryService(workers=1, journal_dir=str(tmp_path))
    hold = threading.Event()
    # Wedge the single worker so the discover job stays queued/running.
    svc.jobs.submit(hold.wait, timeout=60.0)
    relation = service_relation()
    status, body = svc.discover(
        {"relation": relation_to_wire(relation), "wait": False}
    )
    assert status == 202, body
    job_id = body["job_id"]
    svc.jobs.journal.sync()
    # Simulated kill -9: drop the queued future so the job never runs
    # (and never journals a terminal event), then release the wedge.
    svc.jobs._executor.shutdown(wait=False, cancel_futures=True)
    hold.set()
    return job_id


def test_service_recover_mark_restores_interrupted_job(tmp_path):
    job_id = submit_async_and_crash(tmp_path)

    svc = DiscoveryService(workers=1, journal_dir=str(tmp_path), recover="mark")
    try:
        status, body = svc.job_status(job_id)
        assert status == 200
        assert body["state"] == INTERRUPTED
        assert body["restored"] is True
        assert "resubmitted_as" not in body
    finally:
        svc.close()


def test_service_recover_resubmit_reruns_the_work(tmp_path):
    job_id = submit_async_and_crash(tmp_path)

    svc = DiscoveryService(workers=1, journal_dir=str(tmp_path),
                           recover="resubmit")
    try:
        status, body = svc.job_status(job_id)
        assert status == 200
        assert body["state"] == INTERRUPTED
        new_id = body["resubmitted_as"]
        assert new_id and new_id != job_id

        new_job = svc.jobs.get(new_id)
        assert new_job.wait(timeout=60.0) == DONE
        status, body = svc.job_status(new_id)
        assert status == 200
        assert body["state"] == DONE
        assert body["result"]["fds"] is not None
        assert svc.registry.counter("jobs_recovered_total").value == 1
    finally:
        svc.close()


def test_service_statusz_reports_journal_and_storage(tmp_path):
    svc = DiscoveryService(workers=1, journal_dir=str(tmp_path))
    try:
        status, body = svc.statusz()
        assert status == 200
        assert body["checks"]["storage"] == "ok"
        assert body["storage"]["status"] == "ok"
        writers = {w["name"] for w in body["storage"]["writers"]}
        assert "journal" in writers
        assert body["jobs"]["journal"]["appends_total"] >= 0
    finally:
        svc.close()


def test_storage_degradation_is_soft_not_fatal(tmp_path):
    svc = DiscoveryService(workers=1, journal_dir=str(tmp_path))
    try:
        with FaultInjector(seed=3).inject("disk.enospc", times=1).install():
            job = svc.jobs.submit(lambda: 1, key="k")
        assert job.wait(timeout=10.0) == DONE

        status, body = svc.statusz()
        assert status == 200  # degraded, not dead
        assert body["status"] == "degraded"
        assert body["checks"]["storage"] == "degraded"
        assert "journal" in body["storage"]["degraded_writers"]

        # Storage healed: flush drains the parked records.
        assert svc.jobs.journal_writer.flush()
        status, body = svc.statusz()
        assert body["status"] == "ok"
        assert body["checks"]["storage"] == "ok"
    finally:
        svc.close()
