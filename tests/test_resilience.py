"""Unit tests for the resilience primitives (faults, retry, cancel, errors)."""

import threading

import pytest

from repro.errors import (
    CsvFormatError,
    DatasetIOError,
    InputValidationError,
    ReproError,
)
from repro.dataset.io import read_csv
from repro.resilience import (
    CancelledError,
    CancelToken,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    active_injector,
    current_cancel_token,
    retry_call,
    set_current_cancel_token,
)
from repro.resilience import faults


# -- typed errors ------------------------------------------------------------

def test_error_hierarchy_keeps_stdlib_compat():
    assert issubclass(InputValidationError, ValueError)
    assert issubclass(InputValidationError, ReproError)
    assert issubclass(DatasetIOError, OSError)
    assert issubclass(CsvFormatError, ValueError)
    assert issubclass(CsvFormatError, DatasetIOError)


def test_read_csv_missing_file_raises_dataset_io_error(tmp_path):
    with pytest.raises(DatasetIOError, match="cannot read"):
        read_csv(tmp_path / "absent.csv")


def test_read_csv_empty_file_raises_csv_format_error(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    # Still catchable as ValueError (the historical type).
    with pytest.raises(ValueError, match="empty CSV"):
        read_csv(path)
    with pytest.raises(CsvFormatError):
        read_csv(path)


# -- fault injection ---------------------------------------------------------

def test_injector_fires_exact_times():
    injector = FaultInjector(seed=0).inject("p", times=2)
    assert [injector.fires("p") for _ in range(4)] == [True, True, False, False]
    assert injector.counts()["p"] == {"seen": 4, "fired": 2}


def test_injector_after_skips_arrivals():
    injector = FaultInjector(seed=0).inject("p", times=1, after=2)
    assert [injector.fires("p") for _ in range(4)] == [False, False, True, False]


def test_injector_probability_is_seeded_deterministic():
    a = FaultInjector(seed=7).inject("p", times=None, probability=0.5)
    b = FaultInjector(seed=7).inject("p", times=None, probability=0.5)
    seq_a = [a.fires("p") for _ in range(20)]
    seq_b = [b.fires("p") for _ in range(20)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)


def test_install_uninstall_and_module_hooks():
    assert active_injector() is None
    assert faults.fires("p") is False  # production default: no-op
    with FaultInjector(seed=0).inject("p", times=1).install() as injector:
        assert active_injector() is injector
        with pytest.raises(InjectedFault) as excinfo:
            faults.maybe_raise("p")
        assert excinfo.value.point == "p"
        assert faults.fires("p") is False  # plan exhausted
    assert active_injector() is None


def test_second_install_rejected():
    with FaultInjector().inject("p").install():
        with pytest.raises(RuntimeError, match="already installed"):
            FaultInjector().install()


# -- retry/backoff -----------------------------------------------------------

class _Flaky:
    def __init__(self, fail_times, exc_factory):
        self.fail_times = fail_times
        self.exc_factory = exc_factory
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.exc_factory()
        return "ok"


def test_retry_succeeds_after_transient_failures():
    fn = _Flaky(2, lambda: ConnectionResetError("boom"))
    sleeps = []
    result = retry_call(
        fn,
        RetryPolicy(max_attempts=5, base_delay=0.01),
        is_retryable=lambda exc: True,
        sleep=sleeps.append,
    )
    assert result == "ok" and fn.calls == 3
    assert len(sleeps) <= 2  # zero-delay jitter draws skip the sleep call


def test_retry_gives_up_after_max_attempts():
    fn = _Flaky(10, lambda: ConnectionResetError("boom"))
    with pytest.raises(ConnectionResetError):
        retry_call(
            fn,
            RetryPolicy(max_attempts=3, base_delay=0.0),
            is_retryable=lambda exc: True,
            sleep=lambda s: None,
        )
    assert fn.calls == 3


def test_retry_does_not_retry_permanent_errors():
    fn = _Flaky(10, lambda: ValueError("permanent"))
    with pytest.raises(ValueError):
        retry_call(
            fn,
            RetryPolicy(max_attempts=5),
            is_retryable=lambda exc: isinstance(exc, ConnectionError),
            sleep=lambda s: None,
        )
    assert fn.calls == 1


def test_retry_after_overrides_jitter():
    fn = _Flaky(1, lambda: ConnectionResetError("429ish"))
    sleeps = []
    retry_call(
        fn,
        RetryPolicy(max_attempts=3, base_delay=100.0, budget_seconds=10.0),
        is_retryable=lambda exc: True,
        retry_after=lambda exc: 0.25,
        sleep=sleeps.append,
    )
    assert sleeps == [0.25]


def test_retry_budget_bounds_total_sleep():
    fn = _Flaky(10, lambda: ConnectionResetError("boom"))
    with pytest.raises(ConnectionResetError):
        retry_call(
            fn,
            RetryPolicy(max_attempts=10, budget_seconds=1.0),
            is_retryable=lambda exc: True,
            retry_after=lambda exc: 0.6,  # second retry would blow the budget
            sleep=lambda s: None,
        )
    assert fn.calls == 2


def test_retry_schedule_is_seeded_reproducible():
    import random

    policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0)
    delays_a = [policy.delay(k, random.Random(3)) for k in range(4)]
    delays_b = [policy.delay(k, random.Random(3)) for k in range(4)]
    assert delays_a == delays_b
    assert all(0 <= d <= 1.0 for d in delays_a)


# -- cancellation ------------------------------------------------------------

def test_cancel_token_raises_once_set():
    token = CancelToken()
    token.raise_if_cancelled()  # not set: no-op
    token.set("timeout")
    with pytest.raises(CancelledError, match="timeout"):
        token.raise_if_cancelled()
    # First reason wins.
    token.set("other")
    assert token.reason == "timeout"


def test_cancel_token_contextvar_propagation():
    assert current_cancel_token() is None
    token = CancelToken()
    set_current_cancel_token(token)
    try:
        assert current_cancel_token() is token

        seen = []
        thread = threading.Thread(target=lambda: seen.append(current_cancel_token()))
        thread.start()
        thread.join()
        # Plain threads do NOT inherit the contextvar — the job manager
        # must copy the context explicitly (and does).
        assert seen == [None]
    finally:
        set_current_cancel_token(None)


def test_cancelled_error_is_repro_error():
    assert issubclass(CancelledError, ReproError)
    assert issubclass(InjectedFault, ReproError)
