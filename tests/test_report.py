"""Tests for repro.experiments.report."""

import pytest

from repro.experiments.report import Figure, Table


def test_table_render_alignment_and_rows():
    t = Table("Demo", ["name", "value"])
    t.add_row("alpha", 1.23456)
    t.add_row("b", 7)
    text = t.render()
    assert "Demo" in text
    assert "1.235" in text  # floats formatted to 3 places
    assert text.splitlines()[2].startswith("name")


def test_table_arity_check():
    t = Table("Demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_table_markdown():
    t = Table("Demo", ["a", "b"])
    t.add_row("x", 0.5)
    md = t.to_markdown()
    assert md.startswith("### Demo")
    assert "| x | 0.500 |" in md


def test_table_column_access():
    t = Table("Demo", ["a", "b"])
    t.add_row(1, 2)
    t.add_row(3, 4)
    assert t.column("b") == [2, 4]


def test_figure_render():
    f = Figure("Fig", "x", "y")
    f.add_series("s1", [1, 2], [0.1, 0.2])
    text = f.render()
    assert "Fig" in text
    assert "s1" in text
    assert "1:0.100" in text


def test_figure_series_float_coercion():
    f = Figure("Fig", "x", "y")
    f.add_series("s", [0], [1])
    assert f.series[0].y == [1.0]


def test_figure_render_marks_dnf():
    f = Figure("Fig", "x", "y")
    f.add_series("s", [1, 2], [0.5, float("nan")])
    assert "DNF" in f.render()


def test_figure_sparklines():
    f = Figure("Fig", "x", "y")
    f.add_series("a", [1, 2, 3], [0.0, 0.5, 1.0])
    f.add_series("b", [1, 2, 3], [1.0, float("nan"), 0.0])
    art = f.sparklines()
    assert "x" in art      # DNF marker
    assert "█" in art      # peak block
    assert art.count("|") == 4
