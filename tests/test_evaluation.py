"""Tests for repro.metrics.evaluation."""

import pytest

from repro.core.fd import FD
from repro.metrics.evaluation import PRF, exact_fd_score, score_edges, score_fds


def test_prf_f1_harmonic_mean():
    prf = PRF(precision=0.5, recall=1.0)
    assert prf.f1 == pytest.approx(2 * 0.5 / 1.5)
    assert PRF(0.0, 0.0).f1 == 0.0
    assert prf.as_tuple() == (0.5, 1.0, prf.f1)


def test_score_edges_perfect():
    edges = {("a", "b"), ("c", "b")}
    s = score_edges(edges, edges)
    assert s.precision == 1.0 and s.recall == 1.0


def test_score_edges_partial():
    s = score_edges({("a", "b"), ("x", "y")}, {("a", "b"), ("c", "d")})
    assert s.precision == 0.5
    assert s.recall == 0.5


def test_score_edges_empty_cases():
    assert score_edges(set(), {("a", "b")}).precision == 0.0
    assert score_edges({("a", "b")}, set()).recall == 0.0


def test_score_edges_direction_matters_by_default():
    s = score_edges({("b", "a")}, {("a", "b")})
    assert s.f1 == 0.0


def test_score_edges_undirected_mode():
    s = score_edges({("b", "a")}, {("a", "b")}, directed=False)
    assert s.f1 == 1.0


def test_score_fds_uses_edges():
    discovered = [FD(["a", "x"], "b")]
    truth = [FD(["a"], "b")]
    s = score_fds(discovered, truth)
    assert s.precision == 0.5  # (a,b) right, (x,b) wrong
    assert s.recall == 1.0


def test_exact_fd_score():
    discovered = [FD(["a"], "b"), FD(["c"], "d")]
    truth = [FD(["a"], "b"), FD(["e"], "f")]
    s = exact_fd_score(discovered, truth)
    assert s.precision == 0.5
    assert s.recall == 0.5


def test_paper_example_f1():
    """Verify the F1 formula 2PR/(P+R) on a concrete case."""
    discovered = [FD(["a"], "y"), FD(["b"], "y")]
    truth = [FD(["a"], "y"), FD(["c"], "y"), FD(["d"], "y"), FD(["e"], "y")]
    s = score_fds(discovered, truth)
    assert s.precision == pytest.approx(0.5)
    assert s.recall == pytest.approx(0.25)
    assert s.f1 == pytest.approx(2 * 0.5 * 0.25 / 0.75)
