"""Tests for repro.apps.selectivity."""

import numpy as np
import pytest

from repro.apps.selectivity import (
    IndependenceEstimator,
    StructuredSelectivityEstimator,
    q_error,
    true_selectivity,
)
from repro.core.fd import FD
from repro.dataset.relation import Relation


def fd_relation(n=2000, seed=0):
    """zip -> city (deterministic); other independent."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        z = int(rng.integers(10))
        rows.append((z, f"city_{z % 5}", int(rng.integers(4))))
    return Relation.from_rows(["zip", "city", "other"], rows)


FDS = [FD(["zip"], "city")]
ORDER = ["zip", "city", "other"]


def test_true_selectivity_counts():
    rel = Relation.from_rows(["a"], [(1,), (1,), (2,), (2,)])
    assert true_selectivity(rel, {"a": 1}) == 0.5
    assert true_selectivity(rel, {"a": 9}) == 0.0
    assert true_selectivity(rel, {}) == 1.0


def test_independence_estimator_marginals():
    rel = fd_relation()
    est = IndependenceEstimator().fit(rel)
    single = est.estimate({"zip": 3})
    assert single == pytest.approx(true_selectivity(rel, {"zip": 3}), abs=0.02)


def test_independence_underestimates_correlated_conjunction():
    """zip=3 AND city=city_3 is as selective as zip=3 alone; independence
    multiplies the marginals and underestimates by ~5x."""
    rel = fd_relation()
    est = IndependenceEstimator().fit(rel)
    truth = true_selectivity(rel, {"zip": 3, "city": "city_3"})
    assert est.estimate({"zip": 3, "city": "city_3"}) < truth / 2


def test_structured_estimator_handles_fd_conjunction():
    rel = fd_relation()
    est = StructuredSelectivityEstimator(FDS, ORDER, n_samples=30_000).fit(rel)
    predicates = {"zip": 3, "city": "city_3"}
    truth = true_selectivity(rel, predicates)
    assert est.estimate(predicates) == pytest.approx(truth, abs=0.02)


def test_structured_beats_independence_on_q_error():
    rel = fd_relation()
    structured = StructuredSelectivityEstimator(FDS, ORDER, n_samples=30_000).fit(rel)
    independent = IndependenceEstimator().fit(rel)
    worst_s, worst_i = 1.0, 1.0
    for z in range(5):
        predicates = {"zip": z, "city": f"city_{z % 5}"}
        truth = true_selectivity(rel, predicates)
        worst_s = max(worst_s, q_error(structured.estimate(predicates), truth))
        worst_i = max(worst_i, q_error(independent.estimate(predicates), truth))
    assert worst_s < worst_i


def test_contradictory_predicate_near_zero():
    rel = fd_relation()
    est = StructuredSelectivityEstimator(FDS, ORDER, n_samples=20_000).fit(rel)
    # zip=3 implies city_3; city_0 contradicts it.
    assert est.estimate({"zip": 3, "city": "city_0"}) < 0.01


def test_independent_attribute_unaffected():
    rel = fd_relation()
    est = StructuredSelectivityEstimator(FDS, ORDER, n_samples=30_000).fit(rel)
    truth = true_selectivity(rel, {"other": 2})
    assert est.estimate({"other": 2}) == pytest.approx(truth, abs=0.02)


def test_order_consistency_validated():
    with pytest.raises(ValueError, match="not consistent"):
        StructuredSelectivityEstimator([FD(["city"], "zip")], ORDER)
    with pytest.raises(ValueError, match="not in attribute order"):
        StructuredSelectivityEstimator([FD(["zip"], "nope")], ORDER)


def test_estimate_before_fit_raises():
    est = StructuredSelectivityEstimator(FDS, ORDER)
    with pytest.raises(RuntimeError):
        est.estimate({"zip": 1})


def test_unknown_predicate_attribute():
    rel = fd_relation(200)
    est = StructuredSelectivityEstimator(FDS, ORDER, n_samples=1000).fit(rel)
    with pytest.raises(KeyError):
        est.estimate({"nope": 1})


def test_q_error_basics():
    assert q_error(0.1, 0.1) == 1.0
    assert q_error(0.2, 0.1) == pytest.approx(2.0)
    assert q_error(0.0, 0.1) > 1.0  # floored, no division by zero


def test_end_to_end_with_fdx_output():
    from repro.core.fdx import FDX

    rel = fd_relation()
    result = FDX().discover(rel)
    est = StructuredSelectivityEstimator(
        result.fds, result.attribute_order, n_samples=20_000
    ).fit(rel)
    predicates = {"zip": 4, "city": "city_4"}
    truth = true_selectivity(rel, predicates)
    assert q_error(est.estimate(predicates), truth) < 1.5
