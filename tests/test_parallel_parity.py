"""Serial-vs-parallel parity: the determinism contract, asserted.

The engine's promise is that parallelism is *invisible* in the output:
``FDX(n_jobs=N)`` returns byte-identical FDs, B matrix and diagnostics
keys for every backend and worker count. These tests pin that end to
end and per stage (transform blocks, chunked covariance fold, λ-grid
selection). The relation is sized so the pair-sample matrix crosses the
``DEFAULT_CHUNK_ROWS`` boundary — the multi-chunk fold genuinely runs.
"""

import numpy as np
import pytest

from repro.core.fdx import FDX
from repro.core.transform import pair_difference_transform
from repro.dataset.relation import Relation
from repro.linalg.covariance import (
    DEFAULT_CHUNK_ROWS,
    CovarianceAccumulator,
    chunk_bounds,
    empirical_covariance,
    empirical_covariance_chunked,
)
from repro.linalg.model_selection import select_lambda_ebic
from repro.parallel import make_executor


def parity_relation(n=1500, p=6, seed=7):
    """Mixed relation with an embedded FD; n*p pair samples > one chunk."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(15))
        rows.append(
            (
                base,
                base % 5,                      # a0 -> a1
                float(rng.normal()),           # numeric noise
                int(rng.integers(4)),
                int(rng.integers(6)),
                f"t{int(rng.integers(8))}",    # strings
            )
        )
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


BACKEND_GRID = [("thread", 2), ("thread", 3), ("process", 2), ("process", 4)]


# -- end-to-end --------------------------------------------------------------

@pytest.mark.parametrize("backend,workers", BACKEND_GRID)
def test_fdx_results_are_byte_identical_across_backends(backend, workers):
    relation = parity_relation()
    baseline = FDX(seed=3).discover(relation)
    parallel = FDX(
        seed=3, n_jobs=workers, parallel_backend=backend, parallel_min_rows=0
    ).discover(relation)

    assert [str(fd) for fd in parallel.fds] == [str(fd) for fd in baseline.fds]
    assert parallel.attribute_order == baseline.attribute_order
    # Byte-identical, not merely close:
    assert np.array_equal(parallel.autoregression, baseline.autoregression)
    assert np.array_equal(parallel.precision, baseline.precision)
    assert np.array_equal(parallel.covariance, baseline.covariance)
    assert parallel.n_pair_samples == baseline.n_pair_samples
    assert set(parallel.diagnostics) == set(baseline.diagnostics)


def test_diagnostics_record_the_serving_backend():
    relation = parity_relation(n=400)
    serial = FDX(seed=0).discover(relation)
    assert serial.diagnostics["parallel"] == {
        "backend": "serial", "workers": 1, "requested": None, "stages": {},
    }
    parallel = FDX(
        seed=0, n_jobs=2, parallel_backend="process", parallel_min_rows=0
    ).discover(relation)
    assert parallel.diagnostics["parallel"]["backend"] == "process"
    assert parallel.diagnostics["parallel"]["workers"] == 2
    # Parallel runs account for the pool's serialization/IPC overhead
    # per sharded stage; the transform always goes through the executor.
    stages = parallel.diagnostics["parallel"]["stages"]
    assert "transform" in stages, stages
    for stats in stages.values():
        assert stats["calls"] >= 1 and stats["tasks"] >= 1
        assert stats["overhead_seconds"] >= 0.0
        assert stats["wall_seconds"] >= 0.0


def test_small_relations_stay_serial_under_the_row_gate():
    relation = parity_relation(n=200)
    result = FDX(seed=0, n_jobs=4).discover(relation)  # default gate: 4096 rows
    assert result.diagnostics["parallel"]["backend"] == "serial"
    assert result.diagnostics["parallel"]["requested"] == 4


# -- per stage ---------------------------------------------------------------

@pytest.mark.parametrize("backend,workers", BACKEND_GRID)
def test_transform_blocks_are_byte_identical(backend, workers):
    relation = parity_relation(n=800)
    serial = pair_difference_transform(relation, np.random.default_rng(1))
    assert serial.dtype == np.uint8
    with make_executor(backend, workers) as ex:
        parallel = pair_difference_transform(
            relation, np.random.default_rng(1), executor=ex
        )
    assert parallel.dtype == np.uint8
    assert np.array_equal(parallel, serial)


@pytest.mark.parametrize("backend,workers", BACKEND_GRID)
def test_chunked_covariance_is_invariant_in_worker_count(backend, workers):
    rng = np.random.default_rng(2)
    X = rng.normal(size=(3 * DEFAULT_CHUNK_ROWS + 123, 5))
    serial = empirical_covariance_chunked(X)
    with make_executor(backend, workers) as ex:
        parallel = empirical_covariance_chunked(X, executor=ex)
    # The determinism contract: same chunk boundaries + left-fold in
    # chunk order -> the same bits for ANY backend and worker count.
    assert np.array_equal(parallel, serial)
    # And numerically the same covariance as the single-GEMM estimator.
    np.testing.assert_allclose(serial, empirical_covariance(X), atol=1e-10)


def test_single_chunk_falls_back_to_exact_legacy_gemm():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(100, 4))
    assert np.array_equal(
        empirical_covariance_chunked(X), empirical_covariance(X)
    )


def test_accumulator_merge_matches_whole_matrix():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(1000, 4))
    bounds = chunk_bounds(X.shape[0], 256)
    acc = CovarianceAccumulator.from_rows(X[bounds[0][0]:bounds[0][1]])
    for lo, hi in bounds[1:]:
        acc.merge(CovarianceAccumulator.from_rows(X[lo:hi]))
    whole = CovarianceAccumulator.from_rows(X)
    assert acc.n_rows == whole.n_rows
    np.testing.assert_allclose(acc.covariance(), whole.covariance(), atol=1e-12)


@pytest.mark.parametrize("backend,workers", [("thread", 3), ("process", 2)])
def test_lambda_grid_selection_is_identical_in_parallel(backend, workers):
    rng = np.random.default_rng(5)
    X = rng.normal(size=(400, 6))
    X[:, 1] = 0.9 * X[:, 0] + 0.1 * X[:, 1]
    S = empirical_covariance(X)
    grid = (0.01, 0.05, 0.1, 0.2)
    serial = select_lambda_ebic(S, n_samples=400, grid=grid)
    with make_executor(backend, workers) as ex:
        parallel = select_lambda_ebic(S, n_samples=400, grid=grid, executor=ex)
    assert parallel.best_lambda == serial.best_lambda
    assert parallel.scores == serial.scores
    assert parallel.n_edges == serial.n_edges
