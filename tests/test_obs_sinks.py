"""Tests for event sinks and the Prometheus exposition (repro.obs.sinks).

The JSONL sink must stay line-atomic under concurrent writers; the
exposition must escape label values and render counters monotonically
and histograms cumulatively.
"""

import json
import math
import threading

from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    escape_help,
    escape_label_value,
    render_prometheus,
)


class TestInMemorySink:
    def test_ring_is_bounded_and_counts_everything(self):
        sink = InMemorySink(capacity=3)
        for i in range(5):
            sink.emit({"i": i})
        assert [e["i"] for e in sink.events()] == [2, 3, 4]
        assert sink.n_emitted == 5

    def test_clear(self):
        sink = InMemorySink()
        sink.emit({"x": 1})
        sink.clear()
        assert sink.events() == []

    def test_null_sink_swallows(self):
        NullSink().emit({"anything": True})  # must not raise


class TestJsonlSink:
    def test_one_parseable_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"a": 1})
            sink.emit({"b": [1, 2], "nested": {"x": "y"}})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"a": 1}
        assert json.loads(lines[1]) == {"b": [1, 2], "nested": {"x": "y"}}

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"run": 1})
        with JsonlSink(str(path)) as sink:
            sink.emit({"run": 2})
        runs = [json.loads(line)["run"] for line in path.read_text().splitlines()]
        assert runs == [1, 2]

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        sink.emit({"dropped": True})  # must not raise
        assert path.read_text() == ""

    def test_atomicity_under_concurrent_writers(self, tmp_path):
        """Every line in the file parses as one complete JSON object even
        when many threads emit simultaneously."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        n_threads, n_events = 8, 200
        barrier = threading.Barrier(n_threads)

        def writer(thread_id):
            barrier.wait()
            for i in range(n_events):
                sink.emit({"thread": thread_id, "i": i, "pad": "x" * 64})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()

        lines = path.read_text().splitlines()
        assert len(lines) == n_threads * n_events
        seen = set()
        for line in lines:
            event = json.loads(line)  # raises on interleaved/partial lines
            seen.add((event["thread"], event["i"]))
        assert len(seen) == n_threads * n_events  # no duplicates, none lost


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="All requests").inc(3)
        registry.gauge("queue_depth").set(2)
        text = render_prometheus(registry)
        assert "# HELP requests_total All requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 2" in text
        assert text.endswith("\n")

    def test_counter_monotonicity_across_renders(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")

        def value_of(text):
            for line in text.splitlines():
                if line.startswith("events_total "):
                    return float(line.split()[-1])
            raise AssertionError("metric missing")

        counter.inc(5)
        first = value_of(render_prometheus(registry))
        counter.inc(2)
        second = value_of(render_prometheus(registry))
        assert first == 5 and second == 7
        assert second >= first

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        registry = MetricsRegistry()
        registry.counter(
            "weird_total", labels={"path": 'c:\\dir\n"quoted"'}
        ).inc()
        text = render_prometheus(registry)
        assert 'weird_total{path="c:\\\\dir\\n\\"quoted\\""} 1' in text
        # The rendered line stays a single exposition line.
        [line] = [l for l in text.splitlines() if l.startswith("weird_total{")]
        assert line.endswith(" 1")

    def test_help_text_escaping(self):
        # HELP escapes only backslash and newline — quotes stay literal
        # (the exposition format quotes nothing on HELP lines).
        assert escape_help("a\\b") == "a\\\\b"
        assert escape_help("a\nb") == "a\\nb"
        assert escape_help('say "hi"') == 'say "hi"'
        registry = MetricsRegistry()
        registry.counter(
            "helpful_total", help='multi\nline \\ "quoted" help'
        ).inc()
        text = render_prometheus(registry)
        assert '# HELP helpful_total multi\\nline \\\\ "quoted" help' in text
        # The HELP stays one exposition line despite the embedded newline.
        [line] = [l for l in text.splitlines() if l.startswith("# HELP helpful")]
        assert "quoted" in line

    def test_metric_name_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.total").inc()
        text = render_prometheus(registry)
        assert "weird_name_total 1" in text
        assert "weird-name" not in text

    def test_histogram_rendering_is_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(registry)
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_histogram_inf_bucket_equals_count(self):
        registry = MetricsRegistry()
        h = registry.histogram("x_seconds", buckets=(1.0,))
        for v in (0.5, 2.0, 3.0, math.pi):
            h.observe(v)
        text = render_prometheus(registry)
        inf_line = [l for l in text.splitlines() if 'le="+Inf"' in l][0]
        count_line = [l for l in text.splitlines() if l.startswith("x_seconds_count")][0]
        assert inf_line.split()[-1] == count_line.split()[-1] == "4"

    def test_labelled_histogram_keeps_le_last(self):
        registry = MetricsRegistry()
        registry.histogram(
            "req_seconds", labels={"endpoint": "discover"}, buckets=(1.0,)
        ).observe(0.2)
        text = render_prometheus(registry)
        assert 'req_seconds_bucket{endpoint="discover",le="1"} 1' in text
        assert 'req_seconds_sum{endpoint="discover"}' in text
