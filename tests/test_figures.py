"""Tests for repro.experiments.figures (reduced-scale smoke runs)."""

import pytest

from repro.experiments.figures import (
    FIGURE2_PANELS,
    FIGURE7_NOISE_RATES,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)


def test_figure2_panel_grid_is_papers():
    assert len(FIGURE2_PANELS) == 8
    assert FIGURE2_PANELS[0] == ("large", "large", "large", "high")


def test_figure2_reduced_run():
    fig = figure2(
        methods=("FDX", "CORDS"),
        n_instances=1,
        scale=0.02,
        time_limit=30.0,
        panels=(("small", "small", "small", "low"),),
    )
    assert {s.name for s in fig.series} == {"FDX", "CORDS"}
    for s in fig.series:
        assert len(s.y) == 1
        assert 0.0 <= s.y[0] <= 1.0


def test_figure2_fdx_beats_cords_on_easy_panel():
    fig = figure2(
        methods=("FDX", "CORDS"),
        n_instances=2,
        scale=0.3,
        time_limit=60.0,
        panels=(("small", "small", "small", "low"),),
    )
    f1 = {s.name: s.y[0] for s in fig.series}
    assert f1["FDX"] >= f1["CORDS"]


def test_figure3_mentions_hospital_fds():
    text = figure3()
    assert "Discovered FDs" in text
    assert "MeasureCode" in text or "ProviderNumber" in text


def test_figure4_lists_scored_fds():
    text = figure4(time_limit=300.0)
    assert "RFI" in text
    assert "(" in text  # scores in parentheses


def test_figure5_has_both_datasets_and_rankings():
    text = figure5()
    assert "Australian" in text
    assert "Mammographic" in text
    assert "Feature ranking" in text


def test_figure6_runtime_series():
    fig = figure6(column_counts=(4, 8, 12), n_tuples=300, n_instances=1)
    total = next(s for s in fig.series if "total" in s.name)
    model = next(s for s in fig.series if "model" in s.name)
    assert len(total.y) == 3
    # Model time is part of total time.
    for t, m in zip(total.y, model.y):
        assert t >= m >= 0.0
    # Runtime grows with column count.
    assert total.y[-1] > total.y[0]


def test_figure7_noise_monotonicity_shape():
    fig = figure7(
        noise_rates=(0.01, 0.5),
        settings=(("small", "small", "small"),),
        n_instances=2,
        scale=0.3,
    )
    assert len(fig.series) == 1
    ys = fig.series[0].y
    assert len(ys) == 2
    # High noise never beats low noise by a wide margin.
    assert ys[1] <= ys[0] + 0.15


def test_figure7_default_grid_constants():
    assert FIGURE7_NOISE_RATES == (0.01, 0.05, 0.1, 0.3, 0.5)
