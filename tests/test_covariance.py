"""Tests for repro.linalg.covariance."""

import numpy as np
import pytest

from repro.linalg.covariance import (
    correlation_from_covariance,
    empirical_covariance,
    is_positive_definite,
    ledoit_wolf_shrinkage,
    pair_difference_covariance,
    shrunk_covariance,
)


def test_empirical_matches_numpy():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(500, 4))
    S = empirical_covariance(X)
    assert np.allclose(S, np.cov(X, rowvar=False, bias=True), atol=1e-10)


def test_assume_centered_is_second_moment():
    X = np.array([[1.0, 2.0], [3.0, 4.0]])
    S = empirical_covariance(X, assume_centered=True)
    assert np.allclose(S, X.T @ X / 2)


def test_empirical_rejects_bad_input():
    with pytest.raises(ValueError):
        empirical_covariance(np.zeros(5))
    with pytest.raises(ValueError):
        empirical_covariance(np.zeros((0, 3)))


def test_shrunk_covariance_identity_limit():
    S = np.array([[2.0, 1.0], [1.0, 2.0]])
    full = shrunk_covariance(S, 1.0)
    assert np.allclose(full, 2.0 * np.eye(2))  # tr(S)/p = 2
    none = shrunk_covariance(S, 0.0)
    assert np.allclose(none, S)


def test_shrunk_covariance_bad_intensity():
    with pytest.raises(ValueError):
        shrunk_covariance(np.eye(2), 1.1)


def test_ledoit_wolf_in_unit_interval():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(50, 10))
    a = ledoit_wolf_shrinkage(X)
    assert 0.0 <= a <= 1.0


def test_ledoit_wolf_small_sample_shrinks_harder():
    """With a strongly anisotropic true covariance, small samples need more
    shrinkage toward the identity target than large ones."""
    rng = np.random.default_rng(1)
    A = np.diag(np.linspace(0.2, 5.0, 20))
    tiny = ledoit_wolf_shrinkage(rng.normal(size=(10, 20)) @ A)
    big = ledoit_wolf_shrinkage(rng.normal(size=(2000, 20)) @ A)
    assert tiny > big


def test_pair_difference_recovers_covariance_structure():
    rng = np.random.default_rng(2)
    A = np.array([[1.0, 0.8], [0.0, 0.6]])
    X = rng.normal(size=(4000, 2)) @ A.T
    true_cov = A @ A.T
    est = pair_difference_covariance(X, rng, n_pairs=20000)
    assert np.allclose(est, true_cov, atol=0.1)


def test_pair_difference_ignores_mean_shift():
    """Shifting all rows by a constant leaves the estimate unchanged."""
    rng = np.random.default_rng(3)
    X = rng.normal(size=(1000, 3))
    e1 = pair_difference_covariance(X, np.random.default_rng(7), n_pairs=5000)
    e2 = pair_difference_covariance(X + 100.0, np.random.default_rng(7), n_pairs=5000)
    assert np.allclose(e1, e2, atol=1e-8)


def test_pair_difference_needs_two_rows():
    with pytest.raises(ValueError):
        pair_difference_covariance(np.zeros((1, 2)), np.random.default_rng(0))


def test_correlation_from_covariance():
    S = np.array([[4.0, 2.0], [2.0, 9.0]])
    R = correlation_from_covariance(S)
    assert R[0, 0] == 1.0 and R[1, 1] == 1.0
    assert R[0, 1] == pytest.approx(2.0 / 6.0)


def test_correlation_handles_zero_variance():
    S = np.array([[0.0, 0.0], [0.0, 1.0]])
    R = correlation_from_covariance(S)
    assert np.all(np.isfinite(R))
    assert R[0, 0] == 1.0
    assert R[0, 1] == 0.0


def test_is_positive_definite():
    assert is_positive_definite(np.eye(3))
    assert not is_positive_definite(np.diag([1.0, -0.5, 2.0]))
    assert not is_positive_definite(np.zeros((2, 2)))
