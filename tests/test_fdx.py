"""Tests for repro.core.fdx (FDX end to end)."""

import numpy as np
import pytest

from repro.core.fd import FD
from repro.core.fdx import FDX, generate_fds
from repro.dataset.noise import RandomFlipNoise
from repro.dataset.relation import Relation
from repro.metrics.evaluation import score_fds


def fd_relation(n=800, seed=0):
    """key -> a, a -> b; c independent."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = int(rng.integers(20))
        rows.append((a, a % 5, int(rng.integers(7))))
    return Relation.from_rows(["a", "b", "c"], rows)


def test_discovers_simple_fd():
    res = FDX().discover(fd_relation())
    assert FD(["a"], "b") in res.fds


def test_independent_attribute_stays_isolated():
    res = FDX().discover(fd_relation())
    for fd in res.fds:
        assert "c" not in fd.lhs
        assert fd.rhs != "c"


def test_result_fields_populated():
    res = FDX().discover(fd_relation())
    assert res.autoregression.shape == (3, 3)
    assert res.precision.shape == (3, 3)
    assert sorted(res.attribute_order) == ["a", "b", "c"]
    assert res.n_pair_samples == 800 * 3
    assert res.transform_seconds >= 0.0
    assert res.model_seconds >= 0.0
    assert res.total_seconds == res.transform_seconds + res.model_seconds
    assert res.diagnostics["glasso_converged"] in (True, False)


def test_fd_for_lookup():
    res = FDX().discover(fd_relation())
    fd = res.fd_for("b")
    assert fd is not None and fd.rhs == "b"
    # heatmap renders one row per attribute
    rows = res.heatmap_rows(["a", "b", "c"])
    assert len(rows) == 3


def test_robust_to_noise():
    rel = fd_relation(1500)
    noisy, _ = RandomFlipNoise(0.1).apply(rel, np.random.default_rng(1))
    res = FDX().discover(noisy)
    assert FD(["a"], "b") in res.fds


def test_sparsity_monotonically_prunes():
    rel = fd_relation()
    loose = FDX(sparsity=0.0).discover(rel)
    tight = FDX(sparsity=0.3).discover(rel)
    loose_edges = {e for fd in loose.fds for e in fd.edges()}
    tight_edges = {e for fd in tight.fds for e in fd.edges()}
    assert tight_edges <= loose_edges


def test_single_attribute_relation():
    rel = Relation.from_rows(["only"], [(1,), (2,)])
    res = FDX().discover(rel)
    assert res.fds == []


def test_uniform_transform_option():
    res = FDX(transform="uniform").discover(fd_relation())
    assert res.n_pair_samples == 800 * 3


def test_invalid_options_rejected():
    with pytest.raises(ValueError):
        FDX(transform="bogus")
    with pytest.raises(ValueError):
        FDX(sparsity=-0.1)


def test_max_rows_cap_reduces_samples():
    res = FDX(max_rows_per_attribute=100).discover(fd_relation(500))
    assert res.n_pair_samples == 100 * 3


def test_deterministic_given_seed():
    rel = fd_relation()
    r1 = FDX(seed=3).discover(rel)
    r2 = FDX(seed=3).discover(rel)
    assert r1.fds == r2.fds


def test_generate_fds_reads_strict_upper_entries():
    B = np.zeros((3, 3))
    B[0, 2] = 0.5
    B[1, 2] = 0.001  # below threshold
    order = np.array([0, 1, 2])
    fds = generate_fds(B, order, ["x", "y", "z"], sparsity=0.01)
    assert fds == [FD(["x"], "z")]


def test_generate_fds_respects_permutation():
    B = np.zeros((2, 2))
    B[0, 1] = 0.9
    order = np.array([1, 0])  # position 0 is attribute 'y'
    fds = generate_fds(B, order, ["x", "y"], sparsity=0.0)
    assert fds == [FD(["y"], "x")]


def test_numeric_tolerance_parameter_enables_jittered_fds():
    """A numeric column equal to a categorical one up to jitter is only
    linked when the tolerance is widened."""
    from repro.dataset.schema import Attribute, AttributeType, Schema

    rng = np.random.default_rng(7)
    schema = Schema([Attribute("k"), Attribute("v", AttributeType.NUMERIC)])
    rows = []
    for _ in range(800):
        k = int(rng.integers(10))
        rows.append((k, 10.0 * k + float(rng.normal(0, 1e-4))))
    rel = Relation.from_rows(schema, rows)
    strict = FDX().discover(rel)               # tolerance ~0: no agreement
    tolerant = FDX(numeric_tolerance=1e-3).discover(rel)
    assert FD(["k"], "v") not in strict.fds
    assert FD(["k"], "v") in tolerant.fds


def test_two_fd_chain_recovered_with_high_f1():
    rng = np.random.default_rng(5)
    rows = []
    for _ in range(1000):
        k = int(rng.integers(30))
        rows.append((k, k % 6, (k % 6) % 3))
    rel = Relation.from_rows(["k", "m", "n"], rows)
    res = FDX().discover(rel)
    truth = [FD(["k"], "m"), FD(["m"], "n")]
    assert score_fds(res.fds, truth).f1 >= 0.8
