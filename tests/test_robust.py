"""Tests for repro.linalg.robust (robust covariance estimators)."""

import numpy as np
import pytest

from repro.linalg.covariance import empirical_covariance, is_positive_definite
from repro.linalg.robust import (
    corruption_breakdown_check,
    spearman_covariance,
    trimmed_covariance,
)


def correlated_data(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    z = rng.normal(size=n)
    return np.stack([z, 0.8 * z + 0.6 * rng.normal(size=n), rng.normal(size=n)], axis=1)


def test_trimmed_close_to_empirical_on_clean_data():
    X = correlated_data()
    S_emp = empirical_covariance(X)
    S_trim = trimmed_covariance(X, trim=0.02)
    # Trimming shrinks tails slightly; correlation structure is preserved.
    assert np.corrcoef(S_emp.ravel(), S_trim.ravel())[0, 1] > 0.99


def test_trimmed_resists_outliers():
    rng = np.random.default_rng(1)
    X = correlated_data()
    emp_ratio = corruption_breakdown_check(
        lambda A: empirical_covariance(A), X, 0.05, 1000.0, rng
    )
    trim_ratio = corruption_breakdown_check(
        lambda A: trimmed_covariance(A, trim=0.08), X, 0.05,
        1000.0, np.random.default_rng(1),
    )
    assert trim_ratio < emp_ratio / 10


def test_trimmed_psd():
    X = correlated_data(500)
    S = trimmed_covariance(X, trim=0.1)
    assert is_positive_definite(S + 1e-9 * np.eye(3), tol=0)


def test_trimmed_invalid_params():
    with pytest.raises(ValueError):
        trimmed_covariance(correlated_data(50), trim=0.6)
    with pytest.raises(ValueError):
        trimmed_covariance(np.zeros(5))
    with pytest.raises(ValueError):
        trimmed_covariance(np.zeros((0, 2)))


def test_spearman_recovers_correlation_sign_and_strength():
    X = correlated_data()
    S = spearman_covariance(X)
    R = S / np.sqrt(np.outer(np.diag(S), np.diag(S)))
    assert R[0, 1] > 0.6
    assert abs(R[0, 2]) < 0.1


def test_spearman_invariant_to_monotone_corruption():
    X = correlated_data(2000)
    S1 = spearman_covariance(X)
    X_mono = X.copy()
    X_mono[:, 0] = np.exp(X_mono[:, 0] / 2)  # monotone transform
    S2 = spearman_covariance(X_mono)
    R1 = S1 / np.sqrt(np.outer(np.diag(S1), np.diag(S1)))
    R2 = S2 / np.sqrt(np.outer(np.diag(S2), np.diag(S2)))
    assert abs(R1[0, 1] - R2[0, 1]) < 0.02


def test_spearman_needs_two_rows():
    with pytest.raises(ValueError):
        spearman_covariance(np.zeros((1, 2)))


def test_structure_learning_with_robust_covariance():
    from repro.core.structure import learn_structure

    X = correlated_data(1500)
    for cov in ("trimmed", "spearman"):
        est = learn_structure(X, lam=0.05, covariance=cov)
        assert abs(est.precision[0, 1]) > 0.05  # real edge survives
    with pytest.raises(ValueError, match="unknown covariance"):
        learn_structure(X, covariance="bogus")


def test_agreement_pipeline_with_spearman_covariance():
    """End-to-end: structure learning on agreement samples works with the
    rank-based robust estimator (trimming is documented as unsuitable for
    binary indicators — the signal lives in the tails it removes)."""
    from repro.core.structure import learn_structure
    from repro.core.transform import pair_difference_transform
    from repro.dataset.relation import Relation

    rng = np.random.default_rng(3)
    rows = [(int(a), int(a) % 4) for a in rng.integers(12, size=600)]
    rel = Relation.from_rows(["a", "b"], rows)
    samples = pair_difference_transform(rel, np.random.default_rng(0))
    est = learn_structure(samples, lam=0.05, covariance="spearman")
    assert abs(est.precision[0, 1]) > 0.01


def test_trimmed_zeroes_binary_tail_signal():
    """Documented caveat: trimming erases co-agreement signal on binary
    agreement indicators (use spearman/empirical there instead)."""
    from repro.core.structure import learn_structure
    from repro.core.transform import pair_difference_transform
    from repro.dataset.relation import Relation

    rng = np.random.default_rng(3)
    rows = [(int(a), int(a) % 2) for a in rng.integers(4, size=600)]
    rel = Relation.from_rows(["a", "b"], rows)
    samples = pair_difference_transform(rel, np.random.default_rng(0))
    est = learn_structure(samples, lam=0.05, covariance="trimmed")
    assert abs(est.precision[0, 1]) < 0.05
