"""Tests for repro.prep.statistics (relation profiling)."""

import numpy as np
import pytest

from repro.dataset.relation import MISSING, Relation
from repro.dataset.schema import Attribute, AttributeType, Schema
from repro.prep.statistics import profile_relation


def make_relation():
    schema = Schema([
        Attribute("id"),
        Attribute("cat"),
        Attribute("const"),
        Attribute("num", AttributeType.NUMERIC),
    ])
    n = 50
    return Relation(schema, {
        "id": list(range(n)),
        "cat": ["a" if i % 3 else "b" for i in range(n)],
        "const": ["x"] * n,
        "num": [float(i % 5) if i % 10 else MISSING for i in range(n)],
    })


def test_profile_shape():
    p = profile_relation(make_relation())
    assert p.n_rows == 50
    assert p.n_attributes == 4
    assert len(p.attributes) == 4


def test_soft_key_detection():
    p = profile_relation(make_relation())
    assert "id" in p.soft_keys()
    assert "cat" not in p.soft_keys()


def test_constant_detection():
    p = profile_relation(make_relation())
    assert p.attribute("const").is_constant
    assert p.attribute("const").entropy == 0.0
    assert not p.attribute("cat").is_constant


def test_missing_counts():
    p = profile_relation(make_relation())
    num = p.attribute("num")
    assert num.n_missing == 5
    assert num.missing_fraction == pytest.approx(0.1)


def test_top_value_and_fraction():
    p = profile_relation(make_relation())
    cat = p.attribute("cat")
    assert cat.top_value == "a"
    assert cat.top_fraction > 0.6


def test_distinct_counts():
    p = profile_relation(make_relation())
    assert p.attribute("id").n_distinct == 50
    assert p.attribute("cat").n_distinct == 2


def test_unknown_attribute_raises():
    p = profile_relation(make_relation())
    with pytest.raises(KeyError):
        p.attribute("nope")


def test_render_contains_flags():
    text = profile_relation(make_relation()).render()
    assert "key" in text
    assert "const" in text
    assert "id" in text


def test_empty_relation():
    p = profile_relation(Relation.from_rows(["a"], []))
    assert p.n_rows == 0
    assert p.attributes[0].n_distinct == 0
    assert not p.attributes[0].is_soft_key


def test_cli_profile_command(tmp_path, capsys):
    from repro.cli import main
    from repro.dataset.io import write_csv

    path = tmp_path / "d.csv"
    write_csv(make_relation(), path)
    assert main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "50 rows" in out
