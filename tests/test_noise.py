"""Tests for repro.dataset.noise."""

import numpy as np
import pytest

from repro.dataset.noise import (
    MissingNoise,
    RandomFlipNoise,
    SystematicNoise,
    apply_noise,
)
from repro.dataset.relation import MISSING, Relation, is_missing


def make_relation(n=100):
    rng = np.random.default_rng(0)
    return Relation.from_rows(
        ["a", "b"],
        [(int(rng.integers(5)), int(rng.integers(3))) for _ in range(n)],
    )


def test_flip_noise_rate_respected():
    rel = make_relation(200)
    noisy, report = RandomFlipNoise(0.1).apply(rel, np.random.default_rng(1))
    assert report.n_cells == round(0.1 * 200 * 2)
    assert report.rate(rel) == pytest.approx(0.1)


def test_flip_noise_changes_values():
    rel = make_relation(200)
    noisy, report = RandomFlipNoise(0.2).apply(rel, np.random.default_rng(1))
    changed = 0
    for (i, name) in report.cells:
        if noisy.column(name)[i] != rel.column(name)[i]:
            changed += 1
    assert changed == report.n_cells  # every flipped cell differs


def test_flip_noise_zero_is_identity():
    rel = make_relation(50)
    noisy, report = RandomFlipNoise(0.0).apply(rel, np.random.default_rng(1))
    assert noisy == rel
    assert report.n_cells == 0


def test_flip_noise_restricted_attributes():
    rel = make_relation(100)
    noisy, report = RandomFlipNoise(0.5, attributes=["a"]).apply(
        rel, np.random.default_rng(1)
    )
    assert all(name == "a" for _, name in report.cells)
    assert np.array_equal(noisy.column("b"), rel.column("b"))


def test_flip_noise_invalid_rate():
    with pytest.raises(ValueError):
        RandomFlipNoise(1.5)


def test_flip_noise_single_value_domain_unchanged():
    rel = Relation.from_rows(["a"], [("x",)] * 10)
    noisy, _ = RandomFlipNoise(0.5).apply(rel, np.random.default_rng(0))
    assert all(v == "x" for v in noisy.column("a"))


def test_missing_noise_blanks_cells():
    rel = make_relation(100)
    noisy, report = MissingNoise(0.25).apply(rel, np.random.default_rng(2))
    for (i, name) in report.cells:
        assert is_missing(noisy.column(name)[i])
    assert noisy.missing_count() == report.n_cells


def test_systematic_noise_targets_dominant_condition_value():
    rows = [("common", i % 4) for i in range(90)] + [("rare", i % 4) for i in range(10)]
    rel = Relation.from_rows(["cond", "target"], rows)
    channel = SystematicNoise("target", "cond", rate=1.0, mode="missing")
    noisy, report = channel.apply(rel, np.random.default_rng(0))
    assert report.n_cells == 90
    affected_rows = {i for i, _ in report.cells}
    for i in affected_rows:
        assert rel.column("cond")[i] == "common"


def test_systematic_flip_mode_is_deterministic_wrong_value():
    rows = [("c", "x") for _ in range(50)]
    rel = Relation.from_rows(["cond", "target"], rows)
    # Domain has one value: flip cannot change anything.
    noisy, _ = SystematicNoise("target", "cond", mode="flip").apply(
        rel, np.random.default_rng(0)
    )
    assert all(v == "x" for v in noisy.column("target"))


def test_systematic_flip_changes_values_with_larger_domain():
    rows = [("c", "x")] * 25 + [("c", "y")] * 25
    rel = Relation.from_rows(["cond", "target"], rows)
    noisy, report = SystematicNoise("target", "cond", rate=1.0, mode="flip").apply(
        rel, np.random.default_rng(0)
    )
    for i, _ in report.cells:
        assert noisy.column("target")[i] != rel.column("target")[i]


def test_systematic_invalid_mode():
    with pytest.raises(ValueError):
        SystematicNoise("t", "c", mode="bogus")


def test_apply_noise_unions_reports():
    rel = make_relation(100)
    noisy, report = apply_noise(
        rel,
        [RandomFlipNoise(0.05, attributes=["a"]), MissingNoise(0.05, attributes=["b"])],
        np.random.default_rng(3),
    )
    assert any(name == "a" for _, name in report.cells)
    assert any(name == "b" for _, name in report.cells)
