"""Tests for the unified metrics registry (repro.obs.registry).

Includes the regression for the re-homed ``_percentile``: the old
banker's-``round`` nearest rank under-reported upper percentiles for
some window sizes; the ceil-based rank is exact and monotonic.
"""

import math
import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_exact_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.0) == 1

    def test_bankers_round_regression(self):
        """p95 of 31 values: old round-based rank gave 29, true rank is 30."""
        values = list(range(1, 32))  # 1..31
        # Old implementation: values[round(0.95 * 30)] = values[28] = 29.
        assert round(0.95 * 30) == 28  # the banker's-rounding trap
        assert percentile(values, 0.95) == 30  # ceil(0.95 * 31) = 30

    def test_monotonic_in_q_for_all_window_sizes(self):
        qs = [i / 100 for i in range(101)]
        for n in range(1, 64):
            values = list(range(n))
            results = [percentile(values, q) for q in qs]
            assert results == sorted(results), f"non-monotonic at n={n}"

    def test_never_below_true_nearest_rank(self):
        for n in range(1, 64):
            values = list(range(1, n + 1))
            for q in (0.5, 0.9, 0.95, 0.99):
                true_rank = min(max(math.ceil(q * n), 1), n)
                assert percentile(values, q) == values[true_rank - 1]

    def test_old_import_path_still_works(self):
        from repro.service.metrics import _percentile

        assert _percentile([1.0, 2.0, 3.0], 0.5) == 2.0


class TestCounterGauge:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("widgets_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 5

    def test_counter_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc()
        registry.counter("hits_total").inc()
        assert registry.counter("hits_total").value == 2

    def test_labelled_counters_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", labels={"kind": "a"}).inc()
        registry.counter("ops_total", labels={"kind": "b"}).inc(2)
        assert registry.counter("ops_total", labels={"kind": "a"}).value == 1
        assert registry.counter("ops_total", labels={"kind": "b"}).value == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"a": "1", "b": "2"}).inc()
        assert registry.counter("x_total", labels={"b": "2", "a": "1"}).value == 1

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")
        with pytest.raises(ValueError):
            registry.histogram("thing")

    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("racy_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        """Prometheus le semantics: an observation equal to a bound lands
        in that bound's bucket, not the next one."""
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        h.observe(0.1)   # exactly the first edge
        h.observe(1.0)   # exactly the second edge
        h.observe(0.05)  # below first
        h.observe(5.0)   # between 1 and 10
        h.observe(99.0)  # overflow
        cumulative = dict(h.cumulative_counts())
        assert cumulative[0.1] == 2    # 0.05 and 0.1
        assert cumulative[1.0] == 3    # + 1.0
        assert cumulative[10.0] == 4   # + 5.0
        assert cumulative[math.inf] == 5

    def test_count_sum_and_extremes(self):
        h = Histogram("lat", buckets=(1.0,))
        for v in (0.5, 2.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.5)
        snap = h.snapshot()
        assert snap["min"] == 0.5 and snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(6.5 / 3)

    def test_quantiles_answer_at_bucket_resolution(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(95):
            h.observe(0.005)
        for _ in range(5):
            h.observe(0.5)
        assert h.quantile(0.50) == 0.01   # upper bound of the p50 bucket
        assert h.quantile(0.95) == 0.01   # rank 95 still in first bucket
        assert h.quantile(0.99) == 1.0    # rank 99 in the (0.1, 1.0] bucket

    def test_overflow_quantile_reports_observed_max(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(42.0)
        assert h.quantile(0.99) == 42.0

    def test_empty_quantile_is_zero(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.quantile(0.95) == 0.0

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 1.0))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistrySnapshots:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(7)
        registry.histogram("c_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["a_total"] == 2
        assert snap["gauges"]["b"] == 7
        assert snap["histograms"]["c_seconds"]["count"] == 1

    def test_counter_values_excludes_labelled(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc()
        registry.counter("labelled_total", labels={"k": "v"}).inc()
        values = registry.counter_values()
        assert values == {"plain_total": 1}

    def test_collect_is_sorted_and_grouped(self):
        registry = MetricsRegistry()
        registry.counter("z_total", labels={"k": "2"})
        registry.counter("z_total", labels={"k": "1"})
        registry.gauge("a")
        families = registry.collect()
        assert [f[0] for f in families] == ["a", "z_total"]
        z_metrics = families[1][3]
        assert [m.labels for m in z_metrics] == [(("k", "1"),), (("k", "2"),)]
