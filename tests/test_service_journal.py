"""Tests for repro.service.journal (append/replay/compact, torn tails).

The property-style interleaving test is the durability contract: any
valid sequence of job transitions, journaled as it happens and replayed
on a fresh process, must reconstruct exactly the job table the live
manager held — including when the final record is torn mid-write.
"""

import json
import os
import random

import pytest

from repro.service.journal import TERMINAL_EVENTS, JobJournal


@pytest.fixture
def journal(tmp_path):
    j = JobJournal(tmp_path)
    yield j
    j.close()


def test_append_and_replay_round_trip(journal, tmp_path):
    journal.append("submitted", "j-1", kind="discover", attempt=1, key="k1",
                   timeout=30.0, payload={"relation": {"rows": [[1]]}})
    journal.append("started", "j-1")
    journal.append("completed", "j-1")
    journal.sync()

    result = JobJournal(tmp_path).replay()
    assert result.records_total == 3
    assert result.records_skipped == 0
    assert not result.torn_tail
    rec = result.jobs["j-1"]
    assert rec["event"] == "completed"
    assert rec["kind"] == "discover"
    assert rec["attempt"] == 1
    assert rec["key"] == "k1"
    assert "submitted_ts" in rec and "terminal_ts" in rec
    assert result.interrupted == []


def test_in_flight_jobs_are_reported_interrupted(journal, tmp_path):
    journal.append("submitted", "j-queued", kind="discover", attempt=1)
    journal.append("submitted", "j-running", kind="discover", attempt=1)
    journal.append("started", "j-running")
    journal.append("submitted", "j-done", kind="discover", attempt=1)
    journal.append("started", "j-done")
    journal.append("completed", "j-done")
    journal.sync()

    result = JobJournal(tmp_path).replay()
    assert sorted(result.interrupted) == ["j-queued", "j-running"]
    assert result.jobs["j-done"]["event"] == "completed"


def test_failed_record_carries_error_and_crash_flag(journal, tmp_path):
    journal.append("submitted", "j-1", kind="discover", attempt=1)
    journal.append("started", "j-1")
    journal.append("failed", "j-1", error="ValueError: bad", crash=False)
    journal.sync()
    rec = JobJournal(tmp_path).replay().jobs["j-1"]
    assert rec["error"] == "ValueError: bad"


def test_quarantined_record_updates_key_index(journal, tmp_path):
    journal.append("submitted", "j-1", kind="discover", attempt=2, key="poison")
    journal.append("started", "j-1")
    journal.append("quarantined", "j-1", error="worker died", attempts=2,
                   key="poison")
    journal.sync()
    result = JobJournal(tmp_path).replay()
    assert result.quarantined_keys == {"poison": 2}
    assert result.jobs["j-1"]["event"] == "quarantined"
    assert result.attempts["poison"] == 2


def test_attempt_index_tracks_max_per_key(journal, tmp_path):
    journal.append("submitted", "j-1", kind="discover", attempt=1, key="k")
    journal.append("failed", "j-1", error="boom", crash=True)
    journal.append("submitted", "j-2", kind="discover", attempt=2, key="k")
    journal.sync()
    result = JobJournal(tmp_path).replay()
    assert result.attempts == {"k": 2}


def test_torn_final_record_is_tolerated(journal, tmp_path):
    journal.append("submitted", "j-1", kind="discover", attempt=1)
    journal.append("completed", "j-1")
    journal.append("submitted", "j-2", kind="discover", attempt=1)
    journal.sync()
    journal.close()

    # Simulate a crash mid-append: the last record is half-written.
    path = tmp_path / "jobs.jsonl"
    raw = path.read_bytes()
    path.write_bytes(raw[:-20])

    result = JobJournal(tmp_path).replay()
    assert result.torn_tail
    assert result.jobs["j-1"]["event"] == "completed"
    # j-2's submit record was the torn one; it is simply absent.
    assert result.records_skipped == 0


def test_garbage_interior_line_is_counted_not_fatal(journal, tmp_path):
    journal.append("submitted", "j-1", kind="discover", attempt=1)
    journal.sync()
    with open(tmp_path / "jobs.jsonl", "a", encoding="utf-8") as fh:
        fh.write("{not json}\n")
    journal.append("completed", "j-1")
    journal.sync()

    result = JobJournal(tmp_path).replay()
    assert result.records_skipped == 1
    assert not result.torn_tail
    assert result.jobs["j-1"]["event"] == "completed"


def test_compact_collapses_to_one_record_per_job(journal, tmp_path):
    for i in range(5):
        journal.append("submitted", f"j-{i}", kind="discover", attempt=1,
                       payload={"relation": {"rows": [[i]]}})
        journal.append("started", f"j-{i}")
        journal.append("completed", f"j-{i}")
    journal.append("submitted", "j-live", kind="discover", attempt=1,
                   payload={"relation": {"rows": [[9]]}})
    journal.sync()
    journal.close()

    reader = JobJournal(tmp_path)
    result = reader.replay()
    reader.compact(result)
    reader.close()

    lines = [json.loads(l) for l in
             (tmp_path / "jobs.jsonl").read_text().splitlines()]
    assert len(lines) == 6  # one per job
    by_id = {l["job_id"]: l for l in lines}
    # Terminal jobs shed their payload on compaction; live ones keep it
    # so a later --recover resubmit still has the request body.
    assert "payload" not in by_id["j-0"]
    assert by_id["j-live"]["payload"] == {"relation": {"rows": [[9]]}}

    # The compacted journal replays to the same table.
    again = JobJournal(tmp_path).replay()
    assert set(again.jobs) == set(result.jobs)
    assert again.jobs["j-0"]["event"] == "completed"
    assert "j-live" in again.interrupted


def test_fsync_policy_validation(tmp_path):
    with pytest.raises(ValueError):
        JobJournal(tmp_path, fsync_policy="sometimes")


def test_stats_reports_appends_and_size(journal):
    journal.append("submitted", "j-1", kind="discover", attempt=1)
    journal.sync()
    stats = journal.stats()
    assert stats["appends_total"] == 1
    assert stats["size_bytes"] > 0
    assert stats["fsync_policy"] == "batch"


# -- property-style: random interleavings reconstruct the live table ---------

_TERMINALS = ("completed", "failed", "cancelled", "quarantined")


def _random_history(rng, n_jobs):
    """Generate a valid interleaving of per-job transition sequences."""
    per_job = []
    for i in range(n_jobs):
        job_id = f"j-{i}"
        key = f"k-{rng.randrange(max(1, n_jobs // 2))}"
        seq = [("submitted", job_id,
                {"kind": "discover", "attempt": rng.randrange(1, 4), "key": key})]
        fate = rng.random()
        if fate < 0.15:
            pass  # stays queued (in-flight at crash)
        elif fate < 0.30:
            seq.append(("started", job_id, {}))  # running at crash
        else:
            if rng.random() < 0.8:
                seq.append(("started", job_id, {}))
            terminal = rng.choice(_TERMINALS)
            fields = {}
            if terminal == "failed":
                fields = {"error": "boom", "crash": bool(rng.getrandbits(1))}
            elif terminal == "quarantined":
                fields = {"error": "worker died", "attempts": 2, "key": key}
            seq.append((terminal, job_id, fields))
        per_job.append(seq)
    # Interleave: repeatedly pop the head of a random non-empty sequence.
    history = []
    live = [s for s in per_job if s]
    while live:
        seq = rng.choice(live)
        history.append(seq.pop(0))
        live = [s for s in per_job if s]
    return history


def _expected_table(history):
    """Reference replay: last event wins, submit fields stick."""
    jobs = {}
    for event, job_id, fields in history:
        rec = jobs.setdefault(job_id, {})
        rec["event"] = event
        for k, v in fields.items():
            if k != "crash":
                rec[k] = v
    return jobs


@pytest.mark.parametrize("seed", range(8))
def test_random_interleavings_replay_exactly(tmp_path, seed):
    rng = random.Random(seed)
    n_jobs = rng.randrange(3, 12)
    history = _random_history(rng, n_jobs)

    d = tmp_path / f"run-{seed}"
    d.mkdir()
    journal = JobJournal(d, fsync_policy="never")
    for event, job_id, fields in history:
        journal.append(event, job_id, **fields)
    journal.sync()
    journal.close()

    tear = rng.random() < 0.5
    if tear:
        path = d / "jobs.jsonl"
        raw = path.read_bytes()
        cut = rng.randrange(1, min(30, len(raw) - 1))
        path.write_bytes(raw[:-cut])

    result = JobJournal(d).replay()
    expected = _expected_table(history if not tear else history[:-1])
    if tear:
        # The torn record may or may not decode; replay must flag the
        # tear (or have lost it cleanly) and never raise.
        assert result.torn_tail or result.records_total == len(history)
        if result.records_total == len(history):
            expected = _expected_table(history)

    assert set(result.jobs) == set(expected)
    for job_id, want in expected.items():
        got = result.jobs[job_id]
        assert got["event"] == want["event"], job_id
        for field in ("kind", "attempt", "key", "error"):
            if field in want:
                assert got[field] == want[field], (job_id, field)
    want_interrupted = sorted(
        j for j, rec in expected.items() if rec["event"] not in TERMINAL_EVENTS
    )
    assert sorted(result.interrupted) == want_interrupted
    want_quarantined = {
        rec["key"]: rec["attempts"]
        for rec in expected.values() if rec["event"] == "quarantined"
    }
    assert result.quarantined_keys == want_quarantined
