"""Tests for repro.linalg.lasso."""

import numpy as np
import pytest

from repro.linalg.lasso import lasso_coordinate_descent, lasso_regression, soft_threshold


def test_soft_threshold():
    assert soft_threshold(3.0, 1.0) == 2.0
    assert soft_threshold(-3.0, 1.0) == -2.0
    assert soft_threshold(0.5, 1.0) == 0.0
    assert soft_threshold(-0.5, 1.0) == 0.0


def test_quadratic_lasso_matches_closed_form_1d():
    # min 0.5 q b^2 - c b + lam |b|  =>  b = S(c, lam) / q
    q, c, lam = 2.0, 3.0, 0.5
    beta = lasso_coordinate_descent(np.array([[q]]), np.array([c]), lam)
    assert beta[0] == pytest.approx((c - lam) / q)


def test_zero_penalty_matches_least_squares():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 5))
    true = np.array([1.0, -2.0, 0.0, 0.5, 3.0])
    y = X @ true
    beta = lasso_regression(X, y, lam=0.0)
    assert np.allclose(beta, true, atol=1e-5)


def test_large_penalty_zeroes_everything():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(100, 4))
    y = X @ np.array([1.0, 1.0, 1.0, 1.0])
    beta = lasso_regression(X, y, lam=1e6)
    assert np.allclose(beta, 0.0)


def test_penalty_induces_sparsity_on_weak_coefficients():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(500, 3))
    y = X @ np.array([5.0, 0.05, 0.0]) + rng.normal(scale=0.01, size=500)
    beta = lasso_regression(X, y, lam=0.2)
    assert abs(beta[0]) > 3.0
    assert beta[1] == 0.0
    assert beta[2] == 0.0


def test_kkt_conditions_hold():
    """At the optimum: |grad_j| <= lam for zero coords, grad_j = -sign(b_j)*lam else."""
    rng = np.random.default_rng(2)
    X = rng.normal(size=(300, 6))
    y = rng.normal(size=300)
    lam = 0.1
    n = X.shape[0]
    Q = X.T @ X / n
    c = X.T @ y / n
    beta = lasso_coordinate_descent(Q, c, lam, tol=1e-12)
    grad = Q @ beta - c
    for j in range(6):
        if beta[j] == 0.0:
            assert abs(grad[j]) <= lam + 1e-6
        else:
            assert grad[j] == pytest.approx(-np.sign(beta[j]) * lam, abs=1e-6)


def test_warm_start_converges_to_same_solution():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(200, 4))
    y = rng.normal(size=200)
    Q, c = X.T @ X / 200, X.T @ y / 200
    cold = lasso_coordinate_descent(Q, c, 0.05, tol=1e-12)
    warm = lasso_coordinate_descent(Q, c, 0.05, beta0=cold + 0.1, tol=1e-12)
    assert np.allclose(cold, warm, atol=1e-6)


def test_negative_lambda_rejected():
    with pytest.raises(ValueError):
        lasso_coordinate_descent(np.eye(2), np.zeros(2), -0.1)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        lasso_coordinate_descent(np.eye(3), np.zeros(2), 0.1)


def test_empty_problem():
    beta = lasso_coordinate_descent(np.zeros((0, 0)), np.zeros(0), 0.1)
    assert beta.shape == (0,)


def test_empty_design_matrix_rejected():
    with pytest.raises(ValueError):
        lasso_regression(np.zeros((0, 2)), np.zeros(0), 0.1)
