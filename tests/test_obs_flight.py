"""Flight recorder unit tests: ring semantics, triggers, dumps, stats."""

import json
import os
import threading

import pytest

from repro.obs import FlightRecorder, read_dump


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_record_keeps_order_and_sequence():
    recorder = FlightRecorder(capacity=16)
    for i in range(5):
        recorder.record("state", event=f"e{i}")
    events = recorder.events()
    assert [e["data"]["event"] for e in events] == [f"e{i}" for i in range(5)]
    assert [e["seq"] for e in events] == [1, 2, 3, 4, 5]


def test_ring_drops_oldest_and_counts():
    recorder = FlightRecorder(capacity=3)
    for i in range(5):
        recorder.record("state", event=i)
    events = recorder.events()
    assert [e["data"]["event"] for e in events] == [2, 3, 4]
    stats = recorder.stats()
    assert stats["events_total"] == 5
    assert stats["dropped_total"] == 2
    assert stats["buffer_fill"] == 3
    assert stats["capacity"] == 3


def test_events_limit_returns_most_recent():
    recorder = FlightRecorder(capacity=16)
    for i in range(6):
        recorder.record("state", event=i)
    assert [e["data"]["event"] for e in recorder.events(limit=2)] == [4, 5]


def test_emit_adapts_sink_events():
    recorder = FlightRecorder(capacity=16)
    recorder.emit({"type": "span", "trace_id": "t1", "name": "stage",
                   "span_id": "s1", "duration_seconds": 0.1})
    recorder.emit({"type": "request", "trace_id": "t1", "status": 200})
    recorder.emit({"type": "mystery", "payload": 1})
    kinds = [e["kind"] for e in recorder.events()]
    assert kinds == ["span", "request", "state"]
    span = recorder.events()[0]
    assert span["trace_id"] == "t1"
    assert span["data"]["name"] == "stage"
    assert "type" not in span["data"]


def test_metric_delta_records_metric_events():
    recorder = FlightRecorder(capacity=16)
    recorder.metric_delta("requests_total", (("endpoint", "discover"),), 2)
    event = recorder.events()[0]
    assert event["kind"] == "metric"
    assert event["data"] == {
        "name": "requests_total",
        "labels": {"endpoint": "discover"},
        "delta": 2,
    }


def test_trigger_without_directory_records_but_does_not_dump():
    recorder = FlightRecorder(capacity=16)
    assert recorder.trigger("http.5xx", trace_id="t9", status=500) is None
    event = recorder.events()[-1]
    assert event["kind"] == "trigger"
    assert event["data"]["reason"] == "http.5xx"
    assert recorder.stats()["dumps_total"] == 0


def test_trigger_dumps_atomically_with_header(tmp_path):
    recorder = FlightRecorder(capacity=16, directory=str(tmp_path))
    recorder.record("request", trace_id="t1", status=500)
    path = recorder.trigger("http.5xx", trace_id="t1", status=500)
    assert path is not None and os.path.exists(path)
    assert not any(name.endswith(".tmp") for name in os.listdir(tmp_path))

    lines = [json.loads(l) for l in open(path)]
    header = lines[0]
    assert header["kind"] == "dump"
    assert header["reason"] == "http.5xx"
    assert header["events"] == len(lines) - 1
    assert header["pid"] == os.getpid()
    kinds = [l["kind"] for l in lines[1:]]
    assert kinds == ["request", "trigger"]
    # read_dump round-trips the same records.
    assert read_dump(path) == lines


def test_dump_debounced_per_reason(tmp_path):
    clock = FakeClock()
    recorder = FlightRecorder(
        capacity=16, directory=str(tmp_path), debounce_seconds=30.0, clock=clock
    )
    assert recorder.trigger("http.5xx") is not None
    assert recorder.trigger("http.5xx") is None          # inside the window
    assert recorder.trigger("slo.burn") is not None      # other reasons unaffected
    clock.advance(31.0)
    assert recorder.trigger("http.5xx") is not None
    stats = recorder.stats()
    assert stats["dumps_total"] == 3
    assert stats["dumps_by_reason"] == {"http.5xx": 2, "slo.burn": 1}


def test_dumps_pruned_to_max(tmp_path):
    clock = FakeClock()
    recorder = FlightRecorder(
        capacity=4, directory=str(tmp_path), max_dumps=3,
        debounce_seconds=0.0, clock=clock,
    )
    for i in range(6):
        clock.advance(1.0)
        recorder.trigger(f"reason{i}")
    dumps = [n for n in os.listdir(tmp_path) if n.endswith(".jsonl")]
    assert len(dumps) == 3
    # The newest dumps survive (filenames embed the dump sequence).
    assert sorted(dumps) == sorted(
        n for n in dumps if any(f"-{seq:04d}-" in n for seq in (4, 5, 6))
    )


def test_stats_last_dump_age(tmp_path):
    clock = FakeClock()
    recorder = FlightRecorder(capacity=8, directory=str(tmp_path), clock=clock)
    path = recorder.trigger("worker_crash", job_id="j1")
    clock.advance(12.0)
    last = recorder.stats()["last_dump"]
    assert last["path"] == path
    assert last["reason"] == "worker_crash"
    assert last["age_seconds"] == pytest.approx(12.0)


def test_snapshot_contains_stats_and_events():
    recorder = FlightRecorder(capacity=8)
    recorder.record("state", event="x")
    snap = recorder.snapshot(limit=10)
    assert snap["stats"]["events_total"] == 1
    assert len(snap["events"]) == 1


def test_unsafe_reason_sanitized_in_filename(tmp_path):
    recorder = FlightRecorder(capacity=8, directory=str(tmp_path))
    path = recorder.trigger("../evil reason!")
    assert os.path.dirname(path) == str(tmp_path)
    assert "/" not in os.path.basename(path).replace(".jsonl", "")


def test_concurrent_recording_is_lossless_under_capacity():
    recorder = FlightRecorder(capacity=10_000)

    def worker(k):
        for i in range(500):
            recorder.record("metric", name=f"w{k}", delta=1)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = recorder.stats()
    assert stats["events_total"] == 2000
    assert stats["dropped_total"] == 0
    seqs = [e["seq"] for e in recorder.events()]
    assert seqs == sorted(seqs) and len(set(seqs)) == 2000
