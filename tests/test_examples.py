"""Smoke tests keeping the example scripts runnable.

Only the fast examples execute their ``main()`` here; the slow ones
(hospital_profiling, method_comparison — they run RFI) are import-checked.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "feature_engineering",
    "cleaning_and_normalization",
    "mixed_types",
    "streaming_discovery",
    "beyond_fds",
    "query_optimization",
    "service_client",
])
def test_fast_example_runs(name, capsys):
    module = load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


@pytest.mark.parametrize("name", ["hospital_profiling", "method_comparison"])
def test_slow_example_imports(name):
    module = load(name)
    assert callable(module.main)
