"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.partitions import Partition, fd_error_g3
from repro.core.fd import FD, fd_edges, minimal_cover
from repro.core.transform import center_within_blocks
from repro.dataset.relation import Relation
from repro.linalg.cholesky import ldl_decompose, udu_decompose
from repro.linalg.covariance import correlation_from_covariance, empirical_covariance
from repro.linalg.lasso import soft_threshold
from repro.metrics.evaluation import score_edges
from repro.metrics.information import (
    entropy_from_counts,
    expected_mutual_information,
    mutual_information_from_table,
)

# --- strategies -----------------------------------------------------------

attr_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    min_size=2, max_size=5, unique=True,
)

small_codes = st.lists(st.integers(0, 4), min_size=2, max_size=40)

count_tables = arrays(
    np.int64, st.tuples(st.integers(1, 5), st.integers(1, 5)),
    elements=st.integers(0, 20),
)

spd_matrices = st.integers(2, 6).flatmap(
    lambda p: arrays(np.float64, (p, p), elements=st.floats(-1.0, 1.0)).map(
        lambda A: A @ A.T + p * np.eye(p)
    )
)


# --- soft threshold -------------------------------------------------------

@given(st.floats(-100, 100), st.floats(0, 100))
def test_soft_threshold_shrinks_toward_zero(x, t):
    s = soft_threshold(x, t)
    assert abs(s) <= abs(x)
    assert s * x >= 0  # never flips sign


@given(st.floats(-100, 100), st.floats(0, 100))
def test_soft_threshold_exact_value(x, t):
    assert soft_threshold(x, t) == pytest.approx(np.sign(x) * max(abs(x) - t, 0.0))


# --- factorizations -------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(spd_matrices)
def test_ldl_roundtrip_property(A):
    L, d = ldl_decompose(A)
    assert np.allclose(L @ np.diag(d) @ L.T, A, atol=1e-6 * np.abs(A).max())


@settings(max_examples=30, deadline=None)
@given(spd_matrices)
def test_udu_roundtrip_property(A):
    U, d = udu_decompose(A)
    assert np.allclose(U @ np.diag(d) @ U.T, A, atol=1e-6 * np.abs(A).max())
    assert np.allclose(np.diag(U), 1.0)


# --- covariance -----------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 30), st.integers(1, 5)),
              elements=st.floats(-10, 10)))
def test_empirical_covariance_is_psd(X):
    S = empirical_covariance(X)
    eigs = np.linalg.eigvalsh(0.5 * (S + S.T))
    assert np.all(eigs >= -1e-8)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 30), st.integers(1, 5)),
              elements=st.floats(-10, 10)))
def test_correlation_entries_bounded(X):
    R = correlation_from_covariance(empirical_covariance(X))
    assert np.all(np.abs(R) <= 1.0 + 1e-8)


# --- information measures -------------------------------------------------

@given(st.lists(st.integers(0, 50), min_size=1, max_size=10))
def test_entropy_nonnegative_and_bounded(counts):
    h = entropy_from_counts(np.array(counts))
    support = sum(1 for c in counts if c > 0)
    assert h >= 0.0
    if support:
        assert h <= np.log(support) + 1e-9


@settings(max_examples=50, deadline=None)
@given(count_tables)
def test_mi_bounded_by_marginal_entropies(table):
    mi = mutual_information_from_table(table)
    hx = entropy_from_counts(table.sum(axis=1))
    hy = entropy_from_counts(table.sum(axis=0))
    assert -1e-9 <= mi <= min(hx, hy) + 1e-9


@settings(max_examples=30, deadline=None)
@given(count_tables)
def test_expected_mi_at_most_observed_maximum(table):
    emi = expected_mutual_information(table)
    hx = entropy_from_counts(table.sum(axis=1))
    hy = entropy_from_counts(table.sum(axis=0))
    assert -1e-9 <= emi <= min(hx, hy) + 1e-9


# --- partitions -----------------------------------------------------------

@given(small_codes)
def test_partition_size_counts_only_non_singletons(codes):
    p = Partition.from_codes(np.array(codes))
    assert all(len(c) >= 2 for c in p.classes)
    assert p.size <= len(codes)


@given(small_codes, small_codes)
def test_partition_product_refines_both(xc, yc):
    n = min(len(xc), len(yc))
    px = Partition.from_codes(np.array(xc[:n]))
    py = Partition.from_codes(np.array(yc[:n]))
    prod = px.multiply(py)
    assert prod.size <= min(px.size, py.size)
    assert prod.refines(px)


@given(small_codes, small_codes)
def test_fd_error_in_unit_interval(xc, yc):
    n = min(len(xc), len(yc))
    p = Partition.from_codes(np.array(xc[:n]))
    err = fd_error_g3(p, np.array(yc[:n]))
    assert 0.0 <= err <= 1.0


@given(small_codes)
def test_fd_error_reflexive_zero(codes):
    """X -> X always holds: error of a partition against its own codes is 0."""
    arr = np.array(codes)
    p = Partition.from_codes(arr)
    assert fd_error_g3(p, arr) == 0.0


# --- FDs and scoring ------------------------------------------------------

@given(attr_names)
def test_fd_edges_count(names):
    fd = FD(names[:-1], names[-1])
    assert len(fd.edges()) == len(fd.lhs)


@given(attr_names)
def test_minimal_cover_subset_of_input(names):
    fds = [FD(names[:-1], names[-1]), FD(names[:1], names[-1])]
    cover = minimal_cover(fds)
    assert set(cover) <= set(fds)
    assert FD(names[:1], names[-1]) in cover


@settings(max_examples=50)
@given(
    st.sets(st.tuples(st.sampled_from("abcd"), st.sampled_from("wxyz"))),
    st.sets(st.tuples(st.sampled_from("abcd"), st.sampled_from("wxyz"))),
)
def test_score_edges_symmetry_and_bounds(d, t):
    s = score_edges(d, t)
    assert 0.0 <= s.precision <= 1.0
    assert 0.0 <= s.recall <= 1.0
    flipped = score_edges(t, d)
    assert s.precision == pytest.approx(flipped.recall)
    assert s.recall == pytest.approx(flipped.precision)


# --- transform ------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 24), st.integers(1, 4)),
              elements=st.floats(0, 1)))
def test_center_within_blocks_zero_means(X):
    n = X.shape[0]
    for n_blocks in (1, 2):
        if n % n_blocks:
            continue
        out = center_within_blocks(X, n_blocks)
        per = out.reshape(n_blocks, n // n_blocks, X.shape[1])
        assert np.allclose(per.mean(axis=1), 0.0, atol=1e-9)


def test_center_within_blocks_rejects_ragged():
    with pytest.raises(ValueError):
        center_within_blocks(np.zeros((10, 2)), 3)


# --- relation round trips --------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.text(alphabet="xyz", max_size=2)),
                min_size=0, max_size=30))
def test_relation_csv_roundtrip(rows):
    from repro.dataset.io import read_csv_text, to_csv_text
    from repro.dataset.schema import Schema

    # Prefix with a letter so type sniffing keeps the column categorical.
    rel = Relation.from_rows(Schema(["a", "b"]), [(f"v{a}", b or "v") for a, b in rows])
    if rel.n_rows == 0:
        return
    back = read_csv_text(to_csv_text(rel))
    assert back.n_rows == rel.n_rows
    assert [str(v) for v in back.column("a")] == [str(v) for v in rel.column("a")]
