"""Tests for repro.pgm.bayesnet."""

import numpy as np
import pytest

from repro.core.fd import FD
from repro.pgm.bayesnet import BayesianNetwork, Node, make_deterministic_cpts


def tiny_bn():
    return BayesianNetwork([
        Node("A", ("a0", "a1"), (), {(): np.array([0.5, 0.5])}),
        Node("B", ("b0", "b1"), ("A",), {
            ("a0",): np.array([0.9, 0.1]),
            ("a1",): np.array([0.1, 0.9]),
        }),
    ])


def test_structure_accessors():
    bn = tiny_bn()
    assert bn.n_nodes == 2
    assert bn.edges() == {("A", "B")}
    assert bn.parents("B") == ("A",)
    assert bn.roots() == ["A"]


def test_true_fds():
    bn = tiny_bn()
    assert bn.true_fds() == [FD(["A"], "B")]


def test_summary_counts():
    s = tiny_bn().summary()
    assert s == {"attributes": 2, "n_fds": 1, "n_edges": 1}


def test_sample_shapes_and_domains():
    bn = tiny_bn()
    rel = bn.sample(500, np.random.default_rng(0))
    assert rel.shape == (500, 2)
    assert set(rel.domain("A")) <= {"a0", "a1"}
    assert set(rel.domain("B")) <= {"b0", "b1"}


def test_sample_reflects_cpt():
    bn = tiny_bn()
    rel = bn.sample(5000, np.random.default_rng(1))
    a, b = rel.column("A"), rel.column("B")
    match = sum(1 for x, y in zip(a, b) if (x == "a0") == (y == "b0"))
    assert match / 5000 > 0.85  # CPT couples A and B at 0.9


def test_sample_zero_rows():
    assert tiny_bn().sample(0, np.random.default_rng(0)).n_rows == 0


def test_sample_negative_rejected():
    with pytest.raises(ValueError):
        tiny_bn().sample(-1, np.random.default_rng(0))


def test_cycle_detection():
    with pytest.raises(ValueError, match="cycle"):
        BayesianNetwork([
            Node("A", ("0", "1"), ("B",), {("0",): np.array([1.0, 0.0]),
                                           ("1",): np.array([1.0, 0.0])}),
            Node("B", ("0", "1"), ("A",), {("0",): np.array([1.0, 0.0]),
                                           ("1",): np.array([1.0, 0.0])}),
        ])


def test_unknown_parent_rejected():
    with pytest.raises(ValueError, match="unknown parent"):
        BayesianNetwork([
            Node("A", ("0", "1"), ("Z",), {("0",): np.array([1.0, 0.0]),
                                           ("1",): np.array([1.0, 0.0])}),
        ])


def test_incomplete_cpt_rejected():
    with pytest.raises(ValueError, match="CPT rows"):
        BayesianNetwork([
            Node("A", ("0", "1"), (), {(): np.array([0.5, 0.5])}),
            Node("B", ("0", "1"), ("A",), {("0",): np.array([0.5, 0.5])}),
        ])


def test_invalid_distribution_rejected():
    with pytest.raises(ValueError, match="not a distribution"):
        BayesianNetwork([
            Node("A", ("0", "1"), (), {(): np.array([0.7, 0.7])}),
        ])


def test_duplicate_node_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        BayesianNetwork([
            Node("A", ("0", "1"), (), {(): np.array([0.5, 0.5])}),
            Node("A", ("0", "1"), (), {(): np.array([0.5, 0.5])}),
        ])


def test_make_deterministic_cpts_balanced_assignment():
    """With >= |domain| configs, every child value is some config's mode."""
    rng = np.random.default_rng(0)
    bn = make_deterministic_cpts(
        {"X": (), "Y": ("X",)},
        {"X": ("x0", "x1", "x2", "x3"), "Y": ("y0", "y1")},
        rng,
        determinism=0.95,
    )
    modes = {np.argmax(probs) for probs in bn.node("Y").cpt.values()}
    assert modes == {0, 1}


def test_make_deterministic_cpts_rows_are_distributions():
    rng = np.random.default_rng(1)
    bn = make_deterministic_cpts(
        {"X": (), "Y": ("X",)},
        {"X": ("a", "b"), "Y": ("u", "v", "w")},
        rng,
    )
    for probs in bn.node("Y").cpt.values():
        assert np.isclose(probs.sum(), 1.0)
        assert probs.max() >= 0.9


def test_make_deterministic_cpts_invalid_determinism():
    with pytest.raises(ValueError):
        make_deterministic_cpts({"X": ()}, {"X": ("a", "b")},
                                np.random.default_rng(0), determinism=0.0)
