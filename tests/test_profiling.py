"""Tests for repro.prep.profiling."""

import numpy as np
import pytest

from repro.core.fdx import FDX
from repro.dataset.relation import Relation
from repro.prep.imputation import AttentionImputer
from repro.prep.profiling import (
    feature_ranking,
    imputability_experiment,
    median,
    split_by_fd_participation,
)


def fd_relation(n=500, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        k = int(rng.integers(12))
        rows.append((k, k % 4, int(rng.integers(5)), int(rng.integers(5))))
    return Relation.from_rows(["key", "dep", "free1", "free2"], rows)


def test_split_by_fd_participation():
    rel = fd_relation()
    result = FDX().discover(rel)
    with_fd, without_fd = split_by_fd_participation(result, rel.schema.names)
    assert "key" in with_fd and "dep" in with_fd
    assert set(with_fd) | set(without_fd) == set(rel.schema.names)
    assert not set(with_fd) & set(without_fd)


def test_feature_ranking_orders_by_weight():
    rel = fd_relation()
    result = FDX().discover(rel)
    ranking = feature_ranking(result, "dep", rel.schema.names)
    assert ranking, "expected at least one ranked feature"
    assert ranking[0][0] == "key"
    weights = [w for _, w in ranking]
    assert weights == sorted(weights, reverse=True)


def test_imputability_random_fd_attribute_high_f1():
    rel = fd_relation()
    out = imputability_experiment(rel, "dep", AttentionImputer(), "random", seed=2)
    assert out.n_hidden > 0
    assert out.f1 > 0.9


def test_imputability_independent_attribute_low_f1():
    rel = fd_relation()
    out = imputability_experiment(rel, "free1", AttentionImputer(), "random", seed=2)
    assert out.f1 < 0.6


def test_imputability_systematic_mode():
    rel = fd_relation()
    out = imputability_experiment(rel, "dep", AttentionImputer(), "systematic", seed=2)
    assert out.noise_kind == "systematic"
    assert out.n_hidden > 0


def test_imputability_unknown_noise_kind():
    with pytest.raises(ValueError):
        imputability_experiment(fd_relation(), "dep", AttentionImputer(), "bogus")


def test_median_helper():
    assert median([]) == 0.0
    assert median([1.0, 3.0, 2.0]) == 2.0
