"""Tests for repro.service.sessions (streaming sessions over IncrementalFDX)."""

import numpy as np
import pytest

from repro.core.fd import FD
from repro.core.incremental import IncrementalFDX
from repro.dataset.relation import Relation
from repro.service.protocol import Hyperparameters, ProtocolError
from repro.service.sessions import SessionError, SessionManager


def fd_relation(n=600, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = int(rng.integers(15))
        rows.append((a, a % 5, int(rng.integers(6))))
    return Relation.from_rows(["a", "b", "c"], rows)


@pytest.fixture
def manager():
    return SessionManager(max_sessions=4, ttl_seconds=60.0)


def test_create_and_info(manager):
    session = manager.create(Hyperparameters(decay=0.9))
    info = session.to_dict()
    assert info["session_id"].startswith("sess-")
    assert info["hyperparameters"]["decay"] == 0.9
    assert info["n_rows_seen"] == 0
    assert len(manager) == 1


def test_unknown_session_404(manager):
    with pytest.raises(SessionError) as excinfo:
        manager.get("sess-nope")
    assert excinfo.value.status == 404


def test_append_and_discover_matches_incremental(manager):
    rel = fd_relation(750)
    session = manager.create()
    reference = IncrementalFDX()
    for start in range(0, 750, 150):
        batch = rel.select_rows(np.arange(start, start + 150))
        manager.append_batch(session.id, batch)
        reference.add_batch(batch)
    outcome = manager.discover(session.id)
    assert outcome.solved is True
    via_service = outcome.result
    assert set(via_service.fds) == set(reference.discover().fds)
    assert FD(["a"], "b") in set(via_service.fds)
    assert session.to_dict()["n_batches"] == reference.n_batches


def test_schema_mismatch_maps_to_409(manager):
    session = manager.create()
    manager.append_batch(session.id, fd_relation(100))
    other = Relation.from_rows(["x", "y"], [(1, 2)] * 100)
    with pytest.raises(ProtocolError) as excinfo:
        manager.append_batch(session.id, other)
    assert excinfo.value.status == 409


def test_discover_before_data_maps_to_409(manager):
    session = manager.create()
    with pytest.raises(ProtocolError) as excinfo:
        manager.discover(session.id)
    assert excinfo.value.status == 409


def test_reset_clears_statistics(manager):
    session = manager.create()
    manager.append_batch(session.id, fd_relation(200))
    info = manager.reset(session.id)
    assert info["n_rows_seen"] == 0 and info["n_appends"] == 0
    with pytest.raises(ProtocolError):
        manager.discover(session.id)
    # Accepts a fresh (even different-schema) stream after reset.
    manager.append_batch(session.id, Relation.from_rows(["x", "y"], [(i % 4, i % 2) for i in range(100)]))


def test_close_session(manager):
    session = manager.create()
    assert manager.close(session.id) is True
    assert manager.close(session.id) is False
    with pytest.raises(SessionError):
        manager.get(session.id)


def test_capacity_limit_maps_to_429(manager):
    for _ in range(4):
        manager.create()
    with pytest.raises(SessionError) as excinfo:
        manager.create()
    assert excinfo.value.status == 429


def test_idle_sessions_expire(monkeypatch):
    import repro.service.sessions as sessions_mod

    now = [0.0]
    monkeypatch.setattr(sessions_mod.time, "monotonic", lambda: now[0])
    manager = SessionManager(max_sessions=4, ttl_seconds=10.0)
    session = manager.create()
    now[0] = 5.0
    manager.get(session.id)  # touch refreshes the idle clock
    now[0] = 14.0
    assert manager.get(session.id) is session
    now[0] = 30.0
    with pytest.raises(SessionError):
        manager.get(session.id)
    assert manager.stats()["expired"] == 1


def test_stats_sweeps_without_request_traffic(monkeypatch):
    """Idle expiry must not depend on get() traffic: stats()/len() sweep."""
    import repro.service.sessions as sessions_mod

    now = [0.0]
    monkeypatch.setattr(sessions_mod.time, "monotonic", lambda: now[0])
    manager = SessionManager(max_sessions=4, ttl_seconds=10.0)
    manager.create()
    manager.create()
    now[0] = 30.0
    stats = manager.stats()  # nothing but a monitoring probe
    assert stats["active"] == 0
    assert stats["expired"] == 2


def test_len_sweeps_idle_sessions(monkeypatch):
    import repro.service.sessions as sessions_mod

    now = [0.0]
    monkeypatch.setattr(sessions_mod.time, "monotonic", lambda: now[0])
    manager = SessionManager(max_sessions=4, ttl_seconds=10.0)
    manager.create()
    assert len(manager) == 1
    now[0] = 30.0
    assert len(manager) == 0


def test_expiry_emits_sessions_expired_metric(monkeypatch):
    import repro.service.sessions as sessions_mod
    from repro.service.metrics import Metrics

    now = [0.0]
    monkeypatch.setattr(sessions_mod.time, "monotonic", lambda: now[0])
    metrics = Metrics()
    manager = SessionManager(max_sessions=4, ttl_seconds=10.0, metrics=metrics)
    manager.create()
    now[0] = 30.0
    manager.stats()
    assert metrics.counter("sessions_expired") == 1


def test_capacity_frees_expired_slots(monkeypatch):
    """An expired session's slot is reusable without any get() in between."""
    import repro.service.sessions as sessions_mod

    now = [0.0]
    monkeypatch.setattr(sessions_mod.time, "monotonic", lambda: now[0])
    manager = SessionManager(max_sessions=2, ttl_seconds=10.0)
    manager.create()
    manager.create()
    now[0] = 30.0
    manager.create()  # would raise 429 if the sweep had not run
    assert manager.stats()["active"] == 1
