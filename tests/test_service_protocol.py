"""Tests for repro.service.protocol (wire schemas)."""

import json

import pytest

from repro.dataset.relation import MISSING, Relation
from repro.dataset.schema import Attribute, AttributeType, Schema
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Hyperparameters,
    ProtocolError,
    envelope,
    error_payload,
    relation_from_wire,
    relation_to_wire,
)


def sample_relation():
    schema = Schema([
        Attribute("zip"),
        Attribute("pop", AttributeType.NUMERIC),
        Attribute("note", AttributeType.TEXT),
    ])
    rows = [("53703", 250000.0, "state capital"), ("60601", MISSING, "loop")]
    return Relation.from_rows(schema, rows)


def test_relation_wire_roundtrip():
    rel = sample_relation()
    wire = json.loads(json.dumps(relation_to_wire(rel)))
    rebuilt = relation_from_wire(wire)
    assert rebuilt == rel
    assert rebuilt.schema.attributes[1].dtype is AttributeType.NUMERIC


def test_relation_from_rows_payload():
    payload = {
        "attributes": ["a", "b"],
        "rows": [[1, 2], [3, None]],
    }
    rel = relation_from_wire(payload)
    assert rel.n_rows == 2
    assert rel.column("b")[1] is MISSING


@pytest.mark.parametrize("payload", [
    None,
    {},
    {"attributes": []},
    {"attributes": ["a"], "rows": [[1]], "columns": {"a": [1]}},  # both
    {"attributes": ["a"]},  # neither
    {"attributes": ["a", "a"], "rows": [[1, 2]]},  # duplicate names
    {"attributes": [{"name": "a", "dtype": "bogus"}], "rows": [[1]]},
    {"attributes": ["a", "b"], "rows": [[1]]},  # arity mismatch
    {"attributes": ["a", "b"], "columns": {"a": [1], "b": [1, 2]}},  # ragged
    {"attributes": [3], "rows": [[1]]},
])
def test_relation_from_wire_rejects_malformed(payload):
    with pytest.raises(ProtocolError):
        relation_from_wire(payload)


def test_oversized_relation_rejected_with_413():
    payload = {"attributes": [f"a{i}" for i in range(10)],
               "rows": [[0] * 10] * 600_000}
    with pytest.raises(ProtocolError) as excinfo:
        relation_from_wire(payload)
    assert excinfo.value.status == 413


def test_hyperparameters_defaults_and_payload():
    assert Hyperparameters.from_payload(None) == Hyperparameters()
    hp = Hyperparameters.from_payload({"lam": 0.1, "seed": 7})
    assert hp.lam == 0.1 and hp.seed == 7 and hp.sparsity == 0.05


def test_hyperparameters_rejects_unknown_keys():
    with pytest.raises(ProtocolError, match="unknown hyperparameters"):
        Hyperparameters.from_payload({"bogus": 1})
    with pytest.raises(ProtocolError):
        Hyperparameters.from_payload("not an object")


def test_hyperparameters_canonical_is_order_insensitive():
    a = Hyperparameters(lam=0.1, seed=3).canonical()
    b = Hyperparameters(seed=3, lam=0.1).canonical()
    assert a == b
    assert a != Hyperparameters(lam=0.2, seed=3).canonical()


def test_envelope_and_error_payload():
    assert envelope({"x": 1}) == {"protocol_version": PROTOCOL_VERSION, "x": 1}
    err = error_payload("nope", 404)
    assert err["error"] == {"message": "nope", "status": 404}
    assert err["protocol_version"] == PROTOCOL_VERSION
