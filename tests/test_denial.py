"""Tests for repro.constraints.denial (denial constraint discovery)."""

import numpy as np
import pytest

from repro.constraints.denial import (
    DenialConstraint,
    DenialConstraintDiscovery,
    Predicate,
    check_denial_constraint,
)
from repro.core.fd import FD
from repro.dataset.relation import MISSING, Relation
from repro.dataset.schema import Attribute, AttributeType, Schema


def fd_relation(n=400, seed=0):
    """zip -> city; 'id' unique; 'noise' unconstrained."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        z = int(rng.integers(8))
        rows.append((i, z, f"city_{z % 4}", int(rng.integers(3))))
    return Relation.from_rows(["id", "zip", "city", "noise"], rows)


def salary_relation(n=300, seed=1):
    """tax is monotone in salary: an order dependency."""
    rng = np.random.default_rng(seed)
    schema = Schema([
        Attribute("salary", AttributeType.NUMERIC),
        Attribute("tax", AttributeType.NUMERIC),
    ])
    rows = []
    for _ in range(n):
        s = float(rng.uniform(30_000, 200_000))
        rows.append((s, round(0.2 * s + 500.0, 2)))
    return Relation.from_rows(schema, rows)


def test_uniqueness_constraint_found_as_size1_dc():
    res = DenialConstraintDiscovery().discover(fd_relation())
    assert DenialConstraint((Predicate("id", "="),)) in res.constraints


def test_fd_shaped_dc_found():
    res = DenialConstraintDiscovery().discover(fd_relation())
    target = DenialConstraint((Predicate("zip", "="), Predicate("city", "!=")))
    assert target in res.constraints
    assert FD(["zip"], "city") in res.implied_fds()


def test_minimality_supersets_pruned():
    res = DenialConstraintDiscovery(max_predicates=3).discover(fd_relation())
    masks = [frozenset(dc.predicates) for dc in res.constraints]
    for a in masks:
        for b in masks:
            assert a == b or not (a < b)


def test_unconstrained_attribute_not_flagged():
    res = DenialConstraintDiscovery().discover(fd_relation())
    bad = DenialConstraint((Predicate("zip", "="), Predicate("noise", "!=")))
    assert bad not in res.constraints


def test_order_dependency_discovered():
    res = DenialConstraintDiscovery().discover(salary_relation())
    od = DenialConstraint((Predicate("salary", "<"), Predicate("tax", ">")))
    assert od in res.constraints


def test_approximate_dcs_tolerate_noise():
    rel = fd_relation(500)
    # Corrupt a few city cells so the exact FD-DC no longer holds.
    col = rel.column("city")
    for i in (3, 77, 212):
        col[i] = "corrupted"
    noisy = rel.with_column("city", col)
    target = DenialConstraint((Predicate("zip", "="), Predicate("city", "!=")))
    strict = DenialConstraintDiscovery(max_violation_rate=0.0, seed=5).discover(noisy)
    loose = DenialConstraintDiscovery(max_violation_rate=0.01, seed=5).discover(noisy)
    assert target not in strict.constraints
    assert target in loose.constraints


def test_violation_rates_recorded():
    res = DenialConstraintDiscovery(max_violation_rate=0.02).discover(fd_relation())
    assert all(0.0 <= v <= 0.02 + 1e-9 for v in res.violations.values())


def test_check_denial_constraint_consistency():
    rel = fd_relation()
    good = DenialConstraint((Predicate("zip", "="), Predicate("city", "!=")))
    bad = DenialConstraint((Predicate("noise", "="),))
    assert check_denial_constraint(rel, good) == 0.0
    assert check_denial_constraint(rel, bad) > 0.1


def test_as_fd_shapes():
    fd_dc = DenialConstraint((Predicate("a", "="), Predicate("b", "!=")))
    assert fd_dc.as_fd() == FD(["a"], "b")
    od = DenialConstraint((Predicate("a", "<"), Predicate("b", ">")))
    assert od.as_fd() is None
    ucc = DenialConstraint((Predicate("a", "="),))
    assert ucc.as_fd() is None


def test_missing_values_satisfy_nothing():
    rel = Relation.from_rows(["a", "b"], [(MISSING, 1), (MISSING, 1), (1, 2)])
    # All-pairs involving missing 'a' satisfy no predicate on 'a', so
    # not(t1.a = t2.a) trivially holds.
    res = DenialConstraintDiscovery(n_pairs=100).discover(rel)
    assert DenialConstraint((Predicate("a", "="),)) in res.constraints


def test_small_relations_handled():
    res = DenialConstraintDiscovery().discover(Relation.from_rows(["a"], [(1,)]))
    assert res.constraints == []
    assert res.n_pairs == 0


def test_invalid_params():
    with pytest.raises(ValueError):
        DenialConstraintDiscovery(max_predicates=0)
    with pytest.raises(ValueError):
        DenialConstraintDiscovery(max_violation_rate=1.0)


def test_numeric_order_predicates_toggle():
    disc = DenialConstraintDiscovery(numeric_order_predicates=False)
    preds = disc.build_predicates(salary_relation(10))
    assert all(p.op in ("=", "!=") for p in preds)
