"""Tests for repro.prep.repair (FD-driven error detection and repair)."""

import numpy as np
import pytest

from repro.core.fd import FD
from repro.dataset.noise import MissingNoise, RandomFlipNoise
from repro.dataset.relation import MISSING, Relation
from repro.prep.repair import (
    find_violations,
    repair,
    repair_precision_recall,
)

FD_ZIP_CITY = FD(["zip"], "city")


def clean_relation(n=300, seed=0):
    rng = np.random.default_rng(seed)
    city_of = {z: f"city_{z % 6}" for z in range(12)}
    rows = []
    for _ in range(n):
        z = int(rng.integers(12))
        rows.append((z, city_of[z], int(rng.integers(4))))
    return Relation.from_rows(["zip", "city", "other"], rows)


def test_no_violations_on_clean_data():
    rel = clean_relation()
    assert find_violations(rel, [FD_ZIP_CITY]) == []


def test_violations_found_after_noise():
    rel = clean_relation()
    noisy, report = RandomFlipNoise(0.05, attributes=["city"]).apply(
        rel, np.random.default_rng(1)
    )
    violations = find_violations(noisy, [FD_ZIP_CITY])
    flagged = {(v.row, v.attribute) for v in violations}
    # Most corrupted cells are flagged, and suggestions match the truth.
    assert len(flagged & report.cells) >= 0.8 * len(report.cells)
    truth = rel.column("city")
    for v in violations:
        if (v.row, v.attribute) in report.cells:
            assert v.suggested == truth[v.row]


def test_violation_confidence_threshold():
    # Group with a 50/50 split has no confident majority.
    rows = [(1, "a"), (1, "a"), (1, "b"), (1, "b")]
    rel = Relation.from_rows(["zip", "city"], rows)
    assert find_violations(rel, [FD_ZIP_CITY], min_confidence=0.6) == []


def test_repair_restores_corrupted_cells():
    rel = clean_relation()
    noisy, _ = RandomFlipNoise(0.05, attributes=["city"]).apply(
        rel, np.random.default_rng(2)
    )
    repaired, report = repair(noisy, [FD_ZIP_CITY])
    assert report.repaired_cells > 0
    precision, recall = repair_precision_recall(report, rel, noisy, repaired)
    assert precision > 0.9
    assert recall > 0.7


def test_repair_imputes_missing_dependents():
    rel = clean_relation()
    noisy, _ = MissingNoise(0.1, attributes=["city"]).apply(
        rel, np.random.default_rng(3)
    )
    repaired, report = repair(noisy, [FD_ZIP_CITY])
    assert report.imputed_cells > 0
    assert repaired.missing_count("city") < noisy.missing_count("city")


def test_repair_can_skip_imputation():
    rel = clean_relation()
    noisy, _ = MissingNoise(0.1, attributes=["city"]).apply(
        rel, np.random.default_rng(3)
    )
    repaired, report = repair(noisy, [FD_ZIP_CITY], impute_missing=False)
    assert report.imputed_cells == 0
    assert repaired.missing_count("city") == noisy.missing_count("city")


def test_repair_conservative_on_ambiguous_groups():
    rows = [(1, "a")] * 2 + [(1, "b")] * 2
    rel = Relation.from_rows(["zip", "city"], rows)
    repaired, report = repair(rel, [FD_ZIP_CITY], min_confidence=0.8)
    assert report.repaired_cells == 0
    assert repaired == rel


def test_repair_ignores_unknown_attributes():
    rel = clean_relation(50)
    repaired, report = repair(rel, [FD(["nope"], "city"), FD(["zip"], "missing_attr")])
    assert repaired == rel
    assert report.n_violations == 0


def test_missing_determinants_excluded_from_groups():
    rows = [(MISSING, "a"), (MISSING, "b"), (1, "c"), (1, "c")]
    rel = Relation.from_rows(["zip", "city"], rows)
    assert find_violations(rel, [FD_ZIP_CITY]) == []


def test_end_to_end_discover_then_repair():
    """FDX output feeds the repairer directly."""
    from repro import FDX

    rel = clean_relation(600)
    noisy, _ = RandomFlipNoise(0.04, attributes=["city"]).apply(
        rel, np.random.default_rng(5)
    )
    fds = FDX().discover(noisy).fds
    repaired, report = repair(noisy, fds)
    precision, recall = repair_precision_recall(report, rel, noisy, repaired)
    assert report.repaired_cells > 0
    assert precision > 0.8
