"""Tests for repro.datagen.synthetic (the §5.1 generator)."""

import numpy as np
import pytest

from repro.baselines.partitions import Partition, column_codes, fd_error_g3
from repro.datagen.synthetic import (
    SyntheticSpec,
    generate,
    setting_name,
    spec_for_setting,
)


def test_spec_validation():
    with pytest.raises(ValueError):
        SyntheticSpec(n_attributes=1)
    with pytest.raises(ValueError):
        SyntheticSpec(noise_rate=2.0)
    with pytest.raises(ValueError):
        SyntheticSpec(domain_low=1, domain_high=0)


def test_generate_shapes():
    ds = generate(SyntheticSpec(n_tuples=300, n_attributes=10, seed=1))
    assert ds.relation.shape == (300, 10)
    assert ds.relation.schema.names[0] == "A00"


def test_half_of_groups_are_fds():
    ds = generate(SyntheticSpec(n_tuples=200, n_attributes=16, seed=2))
    kinds = [g.kind for g in ds.groups]
    n_fd = kinds.count("fd")
    n_corr = kinds.count("correlation")
    assert abs(n_fd - n_corr) <= 1  # alternating split
    assert len(ds.true_fds) == n_fd


def test_fd_groups_hold_exactly_without_noise():
    ds = generate(SyntheticSpec(n_tuples=400, n_attributes=12, noise_rate=0.0, seed=3))
    for fd in ds.true_fds:
        part = Partition.for_attributes(ds.relation, fd.lhs)
        err = fd_error_g3(part, column_codes(ds.relation, fd.rhs))
        assert err == 0.0


def test_correlation_groups_do_not_hold_exactly():
    ds = generate(SyntheticSpec(n_tuples=2000, n_attributes=12,
                                domain_low=8, domain_high=16,
                                noise_rate=0.0, seed=4))
    corr = [g for g in ds.groups if g.kind == "correlation"]
    assert corr, "generator produced no correlation groups"
    for g in corr:
        part = Partition.for_attributes(ds.relation, list(g.lhs))
        err = fd_error_g3(part, column_codes(ds.relation, g.rhs))
        assert err > 0.01


def test_noise_rate_recorded_and_applied():
    ds = generate(SyntheticSpec(n_tuples=500, n_attributes=12, noise_rate=0.2, seed=5))
    assert ds.noise_report.n_cells > 0
    # Noise only touches FD-participating attributes.
    noisy_attrs = {name for _, name in ds.noise_report.cells}
    assert noisy_attrs <= ds.fd_attributes


def test_lhs_sizes_between_one_and_three():
    ds = generate(SyntheticSpec(n_tuples=100, n_attributes=20, seed=6))
    for fd in ds.true_fds:
        assert 1 <= fd.arity <= 3


def test_rho_bounded():
    ds = generate(SyntheticSpec(n_tuples=100, n_attributes=16, seed=7))
    for g in ds.groups:
        if g.kind == "correlation":
            assert g.rho is not None and 0.0 <= g.rho <= 0.85
        else:
            assert g.rho is None


def test_deterministic_per_seed():
    a = generate(SyntheticSpec(seed=8))
    b = generate(SyntheticSpec(seed=8))
    assert a.relation == b.relation
    assert a.true_fds == b.true_fds


def test_spec_for_setting_values():
    spec = spec_for_setting("small", "small", "small", "low", seed=0)
    assert spec.n_tuples == 1000
    assert 8 <= spec.n_attributes <= 16
    assert spec.domain_low == 64 and spec.domain_high == 216
    assert spec.noise_rate == 0.01
    large = spec_for_setting("large", "large", "large", "high", seed=0)
    assert large.n_tuples == 100_000
    assert 40 <= large.n_attributes <= 80
    assert large.noise_rate == 0.30


def test_spec_for_setting_scale():
    spec = spec_for_setting("large", "small", "small", "low", scale=0.01)
    assert spec.n_tuples == 1000


def test_spec_for_setting_validation():
    with pytest.raises(ValueError):
        spec_for_setting("medium", "small", "small", "low")
    with pytest.raises(ValueError):
        spec_for_setting("small", "small", "small", "medium")


def test_setting_name_format():
    assert setting_name("small", "large", "small", "high") == "t=small r=large d=small n=high"
