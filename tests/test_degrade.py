"""Tests for repro.resilience.degrade (ENOSPC/EIO write degradation)."""

import errno
import random

import pytest

from repro.obs import MetricsRegistry
from repro.resilience.degrade import (
    DEGRADABLE_ERRNOS,
    DegradableWriter,
    is_degradable_oserror,
)


def enospc():
    return OSError(errno.ENOSPC, "No space left on device")


def eio():
    return OSError(errno.EIO, "Input/output error")


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class FlakyDisk:
    """A write target that fails the next ``fail_next`` writes."""

    def __init__(self, exc_factory=enospc):
        self.fail_next = 0
        self.exc_factory = exc_factory
        self.written = []

    def writer(self, value):
        def fn():
            if self.fail_next > 0:
                self.fail_next -= 1
                raise self.exc_factory()
            self.written.append(value)
            return value
        return fn


@pytest.fixture
def clock():
    return FakeClock()


def make_writer(clock, **kwargs):
    kwargs.setdefault("jitter", 0.0)
    return DegradableWriter("test", clock=clock, rng=random.Random(0), **kwargs)


def test_degradable_errno_classification():
    assert is_degradable_oserror(enospc())
    assert is_degradable_oserror(eio())
    assert not is_degradable_oserror(OSError(errno.EACCES, "denied"))
    assert not is_degradable_oserror(ValueError("nope"))
    assert DEGRADABLE_ERRNOS == {errno.ENOSPC, errno.EIO}


def test_healthy_writes_pass_through(clock):
    w = make_writer(clock)
    disk = FlakyDisk()
    assert w.write(disk.writer("a")) == "a"
    assert disk.written == ["a"]
    assert not w.degraded
    assert w.status()["state"] == "ok"


def test_enospc_parks_write_and_degrades(clock):
    w = make_writer(clock)
    disk = FlakyDisk()
    disk.fail_next = 1
    assert w.write(disk.writer("a")) is None
    assert disk.written == []
    assert w.degraded
    status = w.status()
    assert status["state"] == "degraded"
    assert status["failures_total"] == 1
    assert status["buffered"] == 1
    assert "No space left" in status["last_error"]


def test_backoff_window_buffers_without_touching_disk(clock):
    w = make_writer(clock, backoff_seconds=10.0)
    disk = FlakyDisk()
    disk.fail_next = 1
    w.write(disk.writer("a"))
    # Inside the backoff window: the disk must not even be probed.
    disk.fail_next = 0
    assert w.write(disk.writer("b")) is None
    assert disk.written == []
    assert w.status()["buffered"] == 2
    # Past the window the backlog flushes in order, then the new write runs.
    clock.now += 10.0
    assert w.write(disk.writer("c")) == "c"
    assert disk.written == ["a", "b", "c"]
    assert not w.degraded
    assert w.status()["flushed_total"] == 2


def test_backoff_grows_exponentially_and_caps(clock):
    w = make_writer(clock, backoff_seconds=1.0, max_backoff_seconds=4.0)
    disk = FlakyDisk()
    delays = []
    for _ in range(4):
        disk.fail_next = 1
        clock.now += 1000.0  # leave any previous window
        w.write(disk.writer("x"))
        delays.append(w.status()["retry_in_seconds"])
    assert delays == [1.0, 2.0, 4.0, 4.0]


def test_jitter_shrinks_delay_deterministically(clock):
    w = DegradableWriter("test", clock=clock, jitter=0.5,
                         backoff_seconds=10.0, rng=random.Random(7))
    disk = FlakyDisk()
    disk.fail_next = 1
    w.write(disk.writer("x"))
    delay = w.status()["retry_in_seconds"]
    assert 5.0 <= delay <= 10.0


def test_key_coalescing_latest_wins_position_kept(clock):
    w = make_writer(clock, backoff_seconds=5.0)
    disk = FlakyDisk()
    disk.fail_next = 1
    w.write(disk.writer("s1-v1"), key="s1")
    w.write(disk.writer("other"))
    w.write(disk.writer("s1-v2"), key="s1")  # coalesces over s1-v1
    assert w.status()["buffered"] == 2
    clock.now += 5.0
    w.flush()
    # s1 kept its original (first) position but flushed the newest value.
    assert disk.written == ["s1-v2", "other"]


def test_buffer_bound_drops_oldest(clock):
    w = make_writer(clock, backoff_seconds=5.0, max_buffered=3)
    disk = FlakyDisk()
    disk.fail_next = 1
    for i in range(5):
        w.write(disk.writer(f"v{i}"))
    status = w.status()
    assert status["buffered"] == 3
    assert status["dropped_total"] == 2
    clock.now += 5.0
    w.flush()
    assert disk.written == ["v2", "v3", "v4"]


def test_non_degradable_oserror_propagates(clock):
    w = make_writer(clock)

    def denied():
        raise OSError(errno.EACCES, "Permission denied")

    with pytest.raises(OSError) as err:
        w.write(denied)
    assert err.value.errno == errno.EACCES
    assert not w.degraded  # config bugs do not trip degradation


def test_non_degradable_error_during_flush_is_dropped_not_wedged(clock):
    w = make_writer(clock, backoff_seconds=1.0)
    disk = FlakyDisk()
    disk.fail_next = 1
    w.write(disk.writer("a"))

    def denied():
        raise OSError(errno.EACCES, "Permission denied")

    w.write(denied)  # parked behind "a" during the backoff window
    w.write(disk.writer("c"))
    clock.now += 1.0
    assert w.flush()
    assert disk.written == ["a", "c"]
    assert w.status()["dropped_total"] == 1


def test_flush_ignores_backoff_window(clock):
    w = make_writer(clock, backoff_seconds=60.0, max_backoff_seconds=60.0)
    disk = FlakyDisk()
    disk.fail_next = 1
    w.write(disk.writer("a"))
    assert w.status()["retry_in_seconds"] == 60.0
    assert w.flush()  # immediate, despite the window
    assert disk.written == ["a"]
    assert not w.degraded


def test_failed_probe_reenters_backoff(clock):
    w = make_writer(clock, backoff_seconds=1.0)
    disk = FlakyDisk()
    disk.fail_next = 3  # initial failure + failed probe
    w.write(disk.writer("a"))
    clock.now += 1.0
    assert w.write(disk.writer("b")) is None  # probe fails, b parked
    assert w.status()["buffered"] == 2
    assert w.status()["failures_total"] == 2


def test_eio_is_degradable_too(clock):
    w = make_writer(clock)
    disk = FlakyDisk(exc_factory=eio)
    disk.fail_next = 1
    assert w.write(disk.writer("a")) is None
    assert w.degraded


def test_metrics_counted_with_writer_label(clock):
    registry = MetricsRegistry()
    w = DegradableWriter("journal", registry=registry, clock=clock,
                         jitter=0.0, backoff_seconds=1.0)
    disk = FlakyDisk()
    disk.fail_next = 1
    w.write(disk.writer("a"))
    clock.now += 1.0
    w.write(disk.writer("b"))
    labels = {"writer": "journal"}
    assert registry.counter("storage_write_failures_total", labels=labels).value == 1
    assert registry.counter("storage_writes_buffered_total", labels=labels).value == 1
    assert registry.counter("storage_writes_flushed_total", labels=labels).value == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        DegradableWriter("x", backoff_seconds=0.0)
    with pytest.raises(ValueError):
        DegradableWriter("x", jitter=1.5)
