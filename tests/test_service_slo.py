"""Tests for latency SLOs, /v1/statusz deep readiness and client errors."""

import socket
import time

import pytest

from repro.obs import MetricsRegistry
from repro.service import (
    ServiceClient,
    ServiceUnavailableError,
    SloObjective,
    SloTracker,
    start_in_thread,
)
from repro.service.server import DiscoveryService
from repro.service.slo import FALLBACK_OBJECTIVE


# -- SloTracker (unit) -------------------------------------------------------

def _tracker(**objectives):
    registry = MetricsRegistry()
    return registry, SloTracker(registry, objectives=objectives or None)


def test_observe_counts_requests_and_breaches():
    registry, slo = _tracker(fast=SloObjective(0.1, error_budget=0.5))
    assert slo.observe("fast", 0.05) is False
    assert slo.observe("fast", 0.05) is False
    assert slo.observe("fast", 0.25) is True
    labels = {"endpoint": "fast"}
    assert registry.counter("slo_requests_total", labels=labels).value == 3
    assert registry.counter("slo_breaches_total", labels=labels).value == 1
    # 1/3 missed against a 50% budget -> burning at 2/3 the allowed rate.
    assert slo.burn_rate("fast") == pytest.approx((1 / 3) / 0.5)


def test_burn_rate_zero_without_traffic_and_one_on_budget():
    _, slo = _tracker(e=SloObjective(0.1, error_budget=0.05))
    assert slo.burn_rate("e") == 0.0
    for i in range(100):
        slo.observe("e", 0.2 if i < 5 else 0.01)  # exactly 5% breach
    assert slo.burn_rate("e") == pytest.approx(1.0)


def test_unknown_endpoint_uses_fallback_objective():
    _, slo = _tracker(known=SloObjective(0.1))
    assert slo.objective_for("?") is FALLBACK_OBJECTIVE
    assert slo.observe("?", FALLBACK_OBJECTIVE.threshold_seconds + 1) is True


def test_summary_reports_per_endpoint_and_worst():
    _, slo = _tracker(
        a=SloObjective(0.1, error_budget=0.5),
        b=SloObjective(0.1, error_budget=0.5),
    )
    slo.observe("a", 0.01)
    slo.observe("b", 0.5)
    summary = slo.summary()
    assert set(summary["endpoints"]) == {"a", "b"}
    assert summary["endpoints"]["a"]["burn_rate"] == 0.0
    assert summary["endpoints"]["b"]["breaches"] == 1
    assert summary["worst_burn_rate"] == summary["endpoints"]["b"]["burn_rate"] > 0


def test_publish_burn_rates_sets_gauges():
    registry, slo = _tracker(a=SloObjective(0.1, error_budget=0.1))
    slo.observe("a", 1.0)
    slo.publish_burn_rates()
    gauge = registry.gauge("slo_burn_rate", labels={"endpoint": "a"})
    assert gauge.value == pytest.approx(10.0)  # 100% miss / 10% budget


def test_objective_validation():
    with pytest.raises(ValueError):
        SloObjective(0.0)
    with pytest.raises(ValueError):
        SloObjective(1.0, error_budget=0.0)
    with pytest.raises(ValueError):
        SloObjective(1.0, error_budget=1.5)


# -- /v1/statusz + SLO over HTTP ---------------------------------------------

@pytest.fixture(scope="module")
def handle():
    with start_in_thread(workers=2, job_timeout=60.0) as h:
        ServiceClient(h.base_url).wait_until_healthy()
        yield h


@pytest.fixture
def client(handle):
    return ServiceClient(handle.base_url, timeout=30.0)


def test_statusz_reports_deep_readiness(client):
    status = client.statusz()
    assert status["status"] == "ok"
    assert status["checks"] == {
        "job_manager": "ok", "worker_pool": "ok", "solver": "ok", "storage": "ok",
    }
    assert status["uptime_seconds"] >= 0
    assert status["started_at"] <= time.time()
    assert status["jobs"]["workers"] == 2
    assert 0.0 <= status["jobs"]["saturation"] <= 1.0
    assert "hit_rate" in status["cache"]
    assert "active" in status["sessions"]
    # The statusz request itself was preceded by at least the healthz
    # poll from the fixture, so SLO accounting already has traffic.
    assert status["slo"]["endpoints"]["healthz"]["requests"] >= 1
    assert status["slo"]["worst_burn_rate"] >= 0.0


def test_statusz_last_error_captures_5xx(handle, client):
    assert client.statusz()["last_error"] is None or True  # shape-tolerant
    handle.service.record_error("discover", "boom")
    last = client.statusz()["last_error"]
    assert last["endpoint"] == "discover"
    assert last["message"] == "boom"
    assert last["ts"] <= time.time()


def test_slo_counters_in_prometheus_exposition(client):
    client.healthz()
    text = client.metrics_prometheus()
    assert "# TYPE slo_requests_total counter" in text
    assert 'slo_requests_total{endpoint="healthz"}' in text
    assert 'slo_breaches_total{endpoint="healthz"}' in text
    assert "# TYPE slo_burn_rate gauge" in text
    assert 'slo_burn_rate{endpoint="healthz"}' in text


def test_statusz_degraded_answers_503_with_body():
    with start_in_thread(workers=1) as h:
        c = ServiceClient(h.base_url, timeout=10.0)
        c.wait_until_healthy()
        h.service.jobs.shutdown(wait=False)
        status = c.statusz()  # returns the body instead of raising
        assert status["status"] == "degraded"
        assert status["checks"]["job_manager"] == "shutdown"
        # A degraded statusz is not an internal error: not last_error.
        assert status["last_error"] is None


def test_statusz_degraded_unit():
    service = DiscoveryService(workers=1)
    try:
        status, body = service.statusz()
        assert status == 200 and body["status"] == "ok"
        service.jobs.shutdown(wait=False)
        status, body = service.statusz()
        assert status == 503 and body["status"] == "degraded"
    finally:
        service.close()


# -- monotonic clocks --------------------------------------------------------

def test_uptime_is_monotonic_not_wall_clock(handle):
    metrics = handle.service.metrics
    # Simulate a wall-clock step (NTP correction): uptime must not care.
    metrics.started_at -= 3600.0
    uptime = metrics.uptime_seconds()
    assert 0 <= uptime < 600
    assert handle.service.healthz()[1]["uptime_seconds"] < 600
    assert metrics.snapshot()["uptime_seconds"] < 600


def test_job_queue_latency_recorded(handle, client):
    import numpy as np

    from repro.dataset.relation import Relation

    rng = np.random.default_rng(77)
    rel = Relation.from_rows(
        ["a", "b"], [(int(rng.integers(5)), int(rng.integers(3))) for _ in range(200)]
    )
    client.discover(rel)
    text = client.metrics_prometheus()
    assert "# TYPE jobs_queue_seconds histogram" in text
    job = next(iter(handle.service.jobs._jobs.values()))
    payload = job.to_dict()
    assert payload["queue_seconds"] is not None and payload["queue_seconds"] >= 0


# -- client error taxonomy ---------------------------------------------------

def test_wait_until_healthy_raises_dedicated_error():
    # Bind-then-release an ephemeral port so nothing is listening on it.
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=0.5)
    started = time.monotonic()
    with pytest.raises(ServiceUnavailableError) as excinfo:
        client.wait_until_healthy(timeout=0.3)
    assert time.monotonic() - started < 10.0
    error = excinfo.value
    assert error.status == 503
    assert "not healthy" in str(error)
    assert error.last_error is not None
    assert "unreachable" in str(error.last_error)
    # The subclass still reads as a ServiceError to existing callers.
    from repro.service import ServiceError

    assert isinstance(error, ServiceError)
