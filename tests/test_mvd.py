"""Tests for repro.constraints.mvd (multivalued dependencies)."""

import numpy as np
import pytest

from repro.constraints.mvd import (
    MVD,
    MvdDiscovery,
    conditional_mutual_information,
    mvd_holds,
)
from repro.dataset.relation import Relation


def cross_product_relation():
    """Classic MVD example: course ->> book | teacher (every course pairs
    all its books with all its teachers)."""
    rows = []
    catalog = {
        "db": (["ramakrishnan", "garcia-molina"], ["ann", "bob"]),
        "ml": (["bishop"], ["carol", "dan", "eve"]),
    }
    for course, (books, teachers) in catalog.items():
        for b in books:
            for t in teachers:
                rows.append((course, b, t))
    return Relation.from_rows(["course", "book", "teacher"], rows)


def broken_cross_product():
    rel = cross_product_relation()
    rows = [r for r in rel.rows() if r != ("db", "ramakrishnan", "bob")]
    return Relation.from_rows(["course", "book", "teacher"], rows)


def test_mvd_holds_on_cross_product():
    assert mvd_holds(cross_product_relation(), ["course"], ["book"])
    assert mvd_holds(cross_product_relation(), ["course"], ["teacher"])


def test_mvd_violated_when_pair_removed():
    assert not mvd_holds(broken_cross_product(), ["course"], ["book"])


def test_trivial_mvds_hold():
    rel = cross_product_relation()
    assert mvd_holds(rel, ["course", "book"], ["teacher"])  # rest empty
    assert mvd_holds(rel, ["course"], [])


def test_cmi_zero_on_cross_product():
    rel = cross_product_relation()
    cmi = conditional_mutual_information(rel, ["book"], ["teacher"], ["course"])
    assert cmi == pytest.approx(0.0, abs=1e-9)


def test_cmi_positive_when_broken():
    rel = broken_cross_product()
    cmi = conditional_mutual_information(rel, ["book"], ["teacher"], ["course"])
    assert cmi > 0.01


def test_cmi_nonnegative_random():
    rng = np.random.default_rng(0)
    rows = [(int(rng.integers(3)), int(rng.integers(3)), int(rng.integers(3)))
            for _ in range(100)]
    rel = Relation.from_rows(["x", "y", "z"], rows)
    assert conditional_mutual_information(rel, ["y"], ["z"], ["x"]) >= 0.0


def test_discovery_finds_course_mvd():
    res = MvdDiscovery(epsilon=1e-6).discover(cross_product_relation())
    assert any(
        m.determinant == ("course",) and m.dependent == "book" for m in res.mvds
    )


def test_discovery_minimality():
    res = MvdDiscovery(epsilon=1e-6).discover(cross_product_relation())
    per_dep: dict[str, list] = {}
    for m in res.mvds:
        per_dep.setdefault(m.dependent, []).append(frozenset(m.determinant))
    for dets in per_dep.values():
        for a in dets:
            for b in dets:
                assert a == b or not (a < b)


def test_discovery_rejects_dependence():
    """y = f(x) coupled to z = f(x) with shared noise: no empty-determinant
    MVD between y and z."""
    rng = np.random.default_rng(1)
    rows = []
    for _ in range(400):
        shared = int(rng.integers(4))
        rows.append((shared, (shared + int(rng.integers(2))) % 4))
    rel = Relation.from_rows(["y", "z"], rows)
    # Only two attributes: no non-trivial split exists, so nothing found.
    res = MvdDiscovery().discover(rel)
    assert res.mvds == []


def test_epsilon_tolerance_admits_noise():
    rel = broken_cross_product()
    strict = MvdDiscovery(epsilon=0.0).discover(rel)
    loose = MvdDiscovery(epsilon=0.3).discover(rel)
    strict_course = [m for m in strict.mvds
                     if m.determinant == ("course",) and m.dependent == "book"]
    loose_course = [m for m in loose.mvds
                    if m.determinant == ("course",) and m.dependent == "book"]
    assert not strict_course
    assert loose_course


def test_invalid_params():
    with pytest.raises(ValueError):
        MvdDiscovery(max_determinant_size=-1)
    with pytest.raises(ValueError):
        MvdDiscovery(epsilon=-0.1)


def test_str_rendering():
    m = MVD(determinant=("course",), dependent="book", score=0.0)
    assert "course ->> book" in str(m)
