"""Tests for repro.baselines.tane."""

import numpy as np
import pytest

from repro.baselines.tane import Tane, TimeBudgetExceeded
from repro.core.fd import FD
from repro.dataset.noise import RandomFlipNoise
from repro.dataset.relation import Relation


def exact_fd_relation(n=200, seed=0):
    """k determines a and b exactly; z is independent noise."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        k = int(rng.integers(10))
        rows.append((k, k % 3, (k * 7) % 5, int(rng.integers(50))))
    return Relation.from_rows(["k", "a", "b", "z"], rows)


def test_discovers_exact_fds():
    res = Tane(max_error=0.0).discover(exact_fd_relation())
    assert FD(["k"], "a") in res.fds
    assert FD(["k"], "b") in res.fds


def test_fds_are_minimal():
    res = Tane(max_error=0.0).discover(exact_fd_relation())
    for fd in res.fds:
        for sub in fd.lhs:
            if len(fd.lhs) > 1:
                smaller = FD(set(fd.lhs) - {sub}, fd.rhs)
                assert smaller not in res.fds or smaller == fd


def test_discovered_fds_actually_hold():
    rel = exact_fd_relation()
    res = Tane(max_error=0.0).discover(rel)
    from repro.baselines.partitions import Partition, column_codes, fd_error_g3

    for fd in res.fds:
        err = fd_error_g3(Partition.for_attributes(rel, fd.lhs), column_codes(rel, fd.rhs))
        assert err == 0.0


def test_approximate_tolerance_recovers_noisy_fd():
    rel = exact_fd_relation(400)
    noisy, _ = RandomFlipNoise(0.05, attributes=["a"]).apply(
        rel, np.random.default_rng(1)
    )
    strict = Tane(max_error=0.0).discover(noisy)
    tolerant = Tane(max_error=0.1).discover(noisy)
    assert FD(["k"], "a") not in strict.fds
    assert FD(["k"], "a") in tolerant.fds


def test_error_recorded_for_each_fd():
    res = Tane(max_error=0.1).discover(exact_fd_relation())
    assert all(0.0 <= e <= 0.1 + 1e-9 for e in res.errors.values())


def test_max_lhs_size_limits_depth():
    res = Tane(max_error=0.0, max_lhs_size=1).discover(exact_fd_relation())
    assert all(fd.arity == 1 for fd in res.fds)


def test_time_limit_raises():
    rng = np.random.default_rng(0)
    rows = [tuple(int(rng.integers(50)) for _ in range(12)) for _ in range(500)]
    rel = Relation.from_rows([f"c{i}" for i in range(12)], rows)
    with pytest.raises(TimeBudgetExceeded):
        Tane(max_error=0.3, max_lhs_size=6, time_limit=0.05).discover(rel)


def test_invalid_params():
    with pytest.raises(ValueError):
        Tane(max_error=-0.1)
    with pytest.raises(ValueError):
        Tane(max_lhs_size=0)


def test_stats_populated():
    res = Tane().discover(exact_fd_relation())
    assert res.candidates_validated > 0
    assert res.levels_explored >= 1
    assert res.seconds > 0


def test_exhaustive_output_is_large_on_correlated_data():
    """TANE's syntactic search discovers many FDs on small noisy domains
    (the overfitting profile the paper reports)."""
    rng = np.random.default_rng(2)
    rows = [tuple(int(rng.integers(3)) for _ in range(5)) for _ in range(60)]
    rel = Relation.from_rows([f"c{i}" for i in range(5)], rows)
    res = Tane(max_error=0.35).discover(rel)
    assert len(res.fds) >= 5
