"""End-to-end tests for the streaming session endpoints.

Covers the PR-6 surface over real HTTP: delta polling, drift scoring,
checkpoint/restore across a server restart, the force/debounce knobs on
FD reads, and the core concurrency guarantee — appends never block on an
in-flight refresh solve.
"""

import threading
import time

import numpy as np
import pytest

from repro.dataset.relation import Relation
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import start_in_thread
from repro.service.sessions import SessionManager


def fd_relation(n=600, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = int(rng.integers(15))
        rows.append((a, a % 5, int(rng.integers(6))))
    return Relation.from_rows(["a", "b", "c"], rows)


@pytest.fixture
def handle():
    with start_in_thread(workers=2) as h:
        yield h


@pytest.fixture
def client(handle):
    return ServiceClient(handle.base_url, timeout=30.0)


def test_deltas_round_trip_over_http(client):
    sid = client.create_session()
    client.append_batch(sid, fd_relation(400))
    client.session_fds(sid)
    deltas = client.session_deltas(sid)
    assert deltas["session_id"] == sid
    assert deltas["version"] == 1
    assert len(deltas["deltas"]) == 1
    first = deltas["deltas"][0]
    assert any(fd["rhs"] == "b" for fd in first["added"])
    assert first["removed"] == []
    # Cursoring: a caught-up client gets nothing new until a refresh.
    assert client.session_deltas(sid, since=deltas["version"])["deltas"] == []
    client.session_fds(sid, force=True)
    newer = client.session_deltas(sid, since=deltas["version"])
    assert [r["version"] for r in newer["deltas"]] == [2]


def test_deltas_rejects_bad_since(client):
    sid = client.create_session()
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", f"/v1/sessions/{sid}/deltas?since=nope")
    assert excinfo.value.status == 400


def test_drift_endpoint_and_session_info(client):
    sid = client.create_session()
    client.append_batch(sid, fd_relation(400))
    drift = client.session_drift(sid)
    assert drift["session_id"] == sid
    assert "score" in drift and "alert" in drift
    info = client.session_info(sid)
    assert info["drift"]["score"] == drift["score"]
    assert info["changelog_version"] == 0  # no refresh yet


def test_refresh_debounce_and_force_over_http(client):
    sid = client.create_session({"refresh_every_rows": 10_000})
    client.append_batch(sid, fd_relation(400))
    first = client.session_fds_raw(sid)
    assert first["refresh"]["solved"] is True
    second = client.session_fds_raw(sid)
    assert second["refresh"]["solved"] is False  # debounced
    forced = client.session_fds_raw(sid, force=True)
    assert forced["refresh"]["solved"] is True
    assert forced["refresh"]["warm"] is True


def test_checkpoint_without_dir_is_409(client):
    sid = client.create_session()
    with pytest.raises(ServiceError) as excinfo:
        client.checkpoint_session(sid)
    assert excinfo.value.status == 409


def test_checkpoint_restart_restores_sessions(tmp_path):
    directory = str(tmp_path)
    with start_in_thread(workers=2, checkpoint_dir=directory) as handle:
        client = ServiceClient(handle.base_url, timeout=30.0)
        sid = client.create_session({"decay": 0.95})
        client.append_batch(sid, fd_relation(400))
        result = client.session_fds(sid)
        checkpoint = client.checkpoint_session(sid)
        assert checkpoint["session_id"] == sid
        version = client.session_deltas(sid)["version"]
    # "Kill" the server and boot a fresh one over the same directory.
    with start_in_thread(workers=2, checkpoint_dir=directory) as handle:
        client = ServiceClient(handle.base_url, timeout=30.0)
        info = client.session_info(sid)
        assert info["hyperparameters"]["decay"] == 0.95
        assert info["n_rows_seen"] == 400
        deltas = client.session_deltas(sid)
        assert deltas["version"] == version  # changelog intact
        assert handle.service.sessions.stats()["restored"] == 1
        # The restored session keeps streaming, warm-started.
        client.append_batch(sid, fd_relation(200, seed=1))
        revived = client.session_fds_raw(sid, force=True)
        assert revived["refresh"]["warm"] is True
        assert {tuple(fd["lhs"]) + (fd["rhs"],) for fd in revived["result"]["fds"]} \
            == {tuple(fd.lhs) + (fd.rhs,) for fd in result.fds}


def test_statusz_and_prometheus_carry_drift(client):
    sid = client.create_session()
    client.append_batch(sid, fd_relation(400))
    client.session_drift(sid)
    status = client.statusz()
    assert "drift" in status["sessions"]
    assert status["sessions"]["drift"]["max_score"] >= 0.0
    text = client.metrics_prometheus()
    assert "streaming_drift_score" in text
    assert "session_refresh_seconds" in text or "streaming_drift_alerting" in text


def test_append_does_not_block_during_refresh(monkeypatch):
    import repro.service.sessions as sessions_mod

    manager = SessionManager(max_sessions=4, ttl_seconds=60.0)
    session = manager.create()
    manager.append_batch(session.id, fd_relation(300))

    entered = threading.Event()
    release = threading.Event()
    real_solve = sessions_mod.refresh_solve

    def blocking_solve(*args, **kwargs):
        entered.set()
        assert release.wait(10.0), "solve was never released"
        return real_solve(*args, **kwargs)

    monkeypatch.setattr(sessions_mod, "refresh_solve", blocking_solve)
    solver = threading.Thread(target=manager.discover, args=(session.id,))
    solver.start()
    try:
        assert entered.wait(10.0), "refresh never reached the solve"
        # The refresh is now parked inside the solve. Appends must land
        # immediately — the session lock is NOT held across the solve.
        started = time.monotonic()
        info = manager.append_batch(session.id, fd_relation(200, seed=1))
        append_seconds = time.monotonic() - started
        assert info["n_rows_seen"] == 500
        assert append_seconds < 1.0, (
            f"append waited {append_seconds:.2f}s on an in-flight refresh"
        )
    finally:
        release.set()
        solver.join(30.0)
    assert not solver.is_alive()
    # The refresh that was in flight solved the snapshot it took (300
    # rows); the concurrent append is picked up by the next refresh.
    assert session.solved_rows == 300
    outcome = manager.discover(session.id)
    assert outcome.n_rows_seen == 500
