"""Tests for the chunked CSV reader (repro.dataset.io.CsvStream)."""

import pytest

from repro.dataset.io import CsvStream, iter_csv_rows, read_csv, write_csv
from repro.dataset.relation import MISSING, concat_rows
from repro.dataset.schema import AttributeType
from repro.errors import CsvFormatError, DatasetIOError


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "rows.csv"
    lines = ["a,b,c"]
    for i in range(100):
        b = "" if i % 17 == 0 else f"v{i % 7}"
        lines.append(f"{i},{b},{i % 3}.5")
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def test_stream_matches_eager_reader(csv_path):
    eager = read_csv(csv_path)
    stream = CsvStream(csv_path)
    assert stream.n_rows == eager.n_rows
    batches = list(stream.iter_rows(batch_size=7))
    assert all(b.n_rows <= 7 for b in batches)
    assert concat_rows(batches) == eager
    assert stream.read() == eager


def test_stream_schema_matches_eager_sniffing(csv_path):
    eager = read_csv(csv_path)
    stream = CsvStream(csv_path)
    assert stream.schema.names == eager.schema.names
    for name in stream.schema.names:
        assert stream.schema.type_of(name) is eager.schema.type_of(name)
    assert stream.schema.type_of("a") is AttributeType.NUMERIC
    assert stream.schema.type_of("b") is AttributeType.CATEGORICAL


def test_stream_is_reiterable(csv_path):
    stream = CsvStream(csv_path)
    first = concat_rows(list(stream.iter_rows(batch_size=13)))
    second = concat_rows(list(stream.iter_rows(batch_size=50)))
    assert first == second


def test_stream_missing_values(tmp_path):
    path = tmp_path / "m.csv"
    path.write_text("x,y\n1,\nNA,b\n")
    rel = CsvStream(path).read()
    assert rel.column("x")[1] is MISSING
    assert rel.column("y")[0] is MISSING


def test_iter_csv_rows_function(csv_path):
    batches = list(iter_csv_rows(csv_path, batch_size=40))
    assert [b.n_rows for b in batches] == [40, 40, 20]


def test_stream_empty_file_raises(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(CsvFormatError, match="empty CSV"):
        CsvStream(path)


def test_stream_ragged_raises(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("a,b\n1,2\n3\n")
    with pytest.raises(CsvFormatError):
        CsvStream(path)


def test_stream_missing_file_raises(tmp_path):
    with pytest.raises(DatasetIOError):
        CsvStream(tmp_path / "nope.csv")


def test_stream_bad_batch_size(csv_path):
    with pytest.raises(ValueError):
        list(CsvStream(csv_path).iter_rows(batch_size=0))


def test_stream_round_trips_written_csv(tmp_path):
    eager = read_csv_text_fixture()
    path = tmp_path / "written.csv"
    write_csv(eager, str(path))
    assert CsvStream(path).read() == read_csv(str(path))


def read_csv_text_fixture():
    from repro.dataset.io import read_csv_text

    return read_csv_text("p,q\n1,a\n2,b\n3,a\n")
