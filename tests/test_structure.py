"""Tests for repro.core.structure."""

import numpy as np
import pytest

from repro.core.structure import learn_structure


def sem_samples(n=5000, seed=0):
    """Z0 -> Z2 <- Z1, Z2 -> Z3; Z4 independent."""
    rng = np.random.default_rng(seed)
    z0 = rng.normal(size=n)
    z1 = rng.normal(size=n)
    z2 = 0.5 * z0 + 0.5 * z1 + 0.1 * rng.normal(size=n)
    z3 = 0.9 * z2 + 0.1 * rng.normal(size=n)
    z4 = rng.normal(size=n)
    return np.stack([z0, z1, z2, z3, z4], axis=1)


def test_learn_structure_shapes():
    est = learn_structure(sem_samples(), lam=0.05)
    assert est.covariance.shape == (5, 5)
    assert est.precision.shape == (5, 5)
    assert est.autoregression.shape == (5, 5)


def test_autoregression_recovers_sem_edges():
    est = learn_structure(sem_samples(), lam=0.02, ordering="natural")
    B = est.autoregression  # natural order == true topological order
    assert abs(B[0, 2]) > 0.2
    assert abs(B[1, 2]) > 0.2
    assert abs(B[2, 3]) > 0.5
    # Independent variable stays disconnected.
    assert np.all(np.abs(B[:, 4]) < 0.05)
    assert np.all(np.abs(B[4, :]) < 0.05)


def test_standardize_makes_lambda_scale_free():
    X = sem_samples()
    a = learn_structure(X, lam=0.1, standardize=True)
    b = learn_structure(X * 100.0, lam=0.1, standardize=True)
    assert np.allclose(a.precision, b.precision, atol=1e-6)


def test_reconstruction_matches_precision():
    est = learn_structure(sem_samples(), lam=0.05)
    assert np.allclose(est.factorization.reconstruct(), est.precision, atol=1e-6)


def test_rejects_1d_input():
    with pytest.raises(ValueError):
        learn_structure(np.zeros(10))


def test_ordering_option_is_used():
    X = sem_samples()
    est = learn_structure(X, ordering="natural")
    assert est.order.tolist() == [0, 1, 2, 3, 4]


def test_glasso_diagnostics_exposed():
    est = learn_structure(sem_samples(1000), lam=0.1)
    assert est.glasso_iterations >= 1
    assert isinstance(est.glasso_converged, bool)
