"""Tests for repro.core.incremental (streaming FDX)."""

import numpy as np
import pytest

from repro.core.fd import FD
from repro.core.fdx import FDX
from repro.core.incremental import IncrementalFDX, _virtual_samples
from repro.dataset.relation import Relation
from repro.metrics.evaluation import score_fds


def fd_relation(n=600, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = int(rng.integers(15))
        rows.append((a, a % 5, int(rng.integers(6))))
    return Relation.from_rows(["a", "b", "c"], rows)


def test_virtual_samples_reproduce_moment():
    rng = np.random.default_rng(0)
    A = rng.normal(size=(4, 4))
    cov = A @ A.T + np.eye(4)
    X = _virtual_samples(cov)
    assert np.allclose(X.T @ X / X.shape[0], cov, atol=1e-10)


def test_incremental_matches_batch_fds():
    rel = fd_relation(800)
    inc = IncrementalFDX()
    third = rel.n_rows // 3
    for start in range(0, rel.n_rows, third):
        idx = np.arange(start, min(start + third, rel.n_rows))
        if len(idx):
            inc.add_batch(rel.select_rows(idx))
    incremental_fds = set(inc.discover().fds)
    assert FD(["a"], "b") in incremental_fds


def test_incremental_accuracy_comparable_to_batch():
    rel = fd_relation(900, seed=2)
    truth = [FD(["a"], "b")]
    batch_f1 = score_fds(FDX().discover(rel).fds, truth).f1
    inc = IncrementalFDX()
    for start in range(0, 900, 300):
        inc.add_batch(rel.select_rows(np.arange(start, start + 300)))
    inc_f1 = score_fds(inc.discover().fds, truth).f1
    assert inc_f1 >= batch_f1 - 0.25


def test_small_batches_are_buffered():
    rel = fd_relation(200)
    inc = IncrementalFDX(min_batch_rows=100)
    inc.add_batch(rel.select_rows(np.arange(0, 30)))
    assert inc.n_batches == 0
    assert inc.n_rows_seen == 30
    inc.add_batch(rel.select_rows(np.arange(30, 150)))
    assert inc.n_batches == 1
    assert inc.n_rows_seen == 150


def test_discover_flushes_pending_buffer():
    rel = fd_relation(80)
    inc = IncrementalFDX(min_batch_rows=1000)
    inc.add_batch(rel)
    result = inc.discover()  # forced flush of the pending buffer
    assert result.n_pair_samples > 0


def test_schema_mismatch_rejected():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(100))
    other = Relation.from_rows(["x", "y"], [(1, 2)] * 100)
    with pytest.raises(ValueError, match="schema"):
        inc.add_batch(other)


def test_discover_without_data_raises():
    with pytest.raises(RuntimeError):
        IncrementalFDX().discover()
    with pytest.raises(RuntimeError):
        IncrementalFDX().covariance()


def test_reset_clears_state():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(100))
    inc.reset()
    assert inc.n_rows_seen == 0
    with pytest.raises(RuntimeError):
        inc.discover()


def test_diagnostics_mark_incremental():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(200))
    result = inc.discover()
    assert result.diagnostics["incremental"] is True
    assert result.diagnostics["n_batches"] == 1


def test_decay_forgets_broken_dependency():
    """After drift, a decayed stream drops the stale FD; an undecayed one
    keeps it much longer."""
    def make(n, seed, broken):
        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(n):
            a = int(rng.integers(8))
            b = a % 4 if not broken else int(rng.integers(4))
            rows.append((a, b))
        return Relation.from_rows(["a", "b"], rows)

    decayed = IncrementalFDX(decay=0.5)
    flat = IncrementalFDX(decay=1.0)
    for day in range(3):
        for inc in (decayed, flat):
            inc.add_batch(make(300, day, broken=False))
    for day in range(3, 10):
        for inc in (decayed, flat):
            inc.add_batch(make(300, day, broken=True))
    assert FD(["a"], "b") not in decayed.discover().fds


def test_decay_validation():
    with pytest.raises(ValueError):
        IncrementalFDX(decay=0.0)
    with pytest.raises(ValueError):
        IncrementalFDX(decay=1.5)


def test_empty_batch_is_a_noop():
    inc = IncrementalFDX()
    empty = fd_relation(100).select_rows(np.arange(0))
    inc.add_batch(empty)
    assert inc.n_rows_seen == 0
    # An empty first batch must not pin the schema either.
    inc.add_batch(Relation.from_rows(["x", "y"], [(i % 4, i % 2) for i in range(100)]))
    assert inc.n_rows_seen == 100


def test_empty_batch_between_real_batches():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(100))
    before = inc.n_pair_samples
    inc.add_batch(fd_relation(100).select_rows(np.arange(0)))
    assert inc.n_pair_samples == before
    inc.add_batch(fd_relation(100, seed=1))
    assert inc.n_rows_seen == 200


def test_unseen_schema_raises_cleanly_and_keeps_state():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(200))
    with pytest.raises(ValueError, match="schema"):
        inc.add_batch(Relation.from_rows(["a", "b"], [(1, 2)] * 100))
    # The failed append must not have corrupted the accumulated state.
    assert inc.n_rows_seen == 200
    assert FD(["a"], "b") in set(inc.discover().fds)


def test_reset_after_discover_allows_fresh_stream():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(300))
    first = inc.discover()
    assert FD(["a"], "b") in set(first.fds)
    inc.reset()
    assert inc.n_rows_seen == 0 and inc.n_batches == 0
    # A fresh stream with a different schema is accepted after reset.
    rows = [(i % 6, (i % 6) % 3) for i in range(300)]
    inc.add_batch(Relation.from_rows(["x", "y"], rows))
    second = inc.discover()
    assert second.diagnostics["n_batches"] == 1
    assert all(fd.rhs in ("x", "y") for fd in second.fds)


def test_pair_sample_count_accumulates():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(100, seed=1))
    first = inc.n_pair_samples
    inc.add_batch(fd_relation(100, seed=2))
    assert inc.n_pair_samples == 2 * first


def test_decay_one_single_batch_matches_batch_fdx():
    """decay=1.0 with one batch is *exactly* the batch estimator: the
    first batch's pairing RNG matches FDX's, so the FD sets coincide."""
    rel = fd_relation(600)
    batch_fds = set(FDX().discover(rel).fds)
    inc = IncrementalFDX(decay=1.0)
    inc.add_batch(rel)
    assert set(inc.discover().fds) == batch_fds


def test_decay_one_accumulates_additively():
    """With decay=1.0 the accumulated second moment is the plain sum of
    the per-batch contributions (nothing is forgotten)."""
    inc = IncrementalFDX(decay=1.0)
    u1 = inc.add_batch(fd_relation(200, seed=1))
    u2 = inc.add_batch(fd_relation(200, seed=2))
    total = u1.n_samples + u2.n_samples
    assert inc.n_pair_samples == total
    expected = (u1.outer + u2.outer) / total
    assert np.allclose(inc.covariance(), expected)


def test_snapshot_is_immutable_copy():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(200))
    stats = inc.snapshot()
    before = stats.covariance().copy()
    inc.add_batch(fd_relation(200, seed=1))
    assert np.allclose(stats.covariance(), before)  # unaffected by appends
    assert stats.n_rows_seen == 200


def test_snapshot_flushes_pending_buffer():
    inc = IncrementalFDX(min_batch_rows=1000)
    inc.add_batch(fd_relation(80))
    stats = inc.snapshot(flush=True)
    assert stats.n_rows_seen == 80
    assert stats.n_samples > 0


def test_state_dict_round_trip():
    inc = IncrementalFDX(min_batch_rows=100)
    inc.add_batch(fd_relation(250))
    inc.add_batch(fd_relation(30, seed=1))  # stays pending
    state = inc.state_dict()

    revived = IncrementalFDX(min_batch_rows=100)
    revived.load_state(state)
    assert revived.n_rows_seen == inc.n_rows_seen
    assert revived.n_batches == inc.n_batches
    assert np.allclose(revived.covariance(), inc.covariance())
    assert set(revived.discover().fds) == set(inc.discover().fds)


def test_warm_start_discover_matches_cold():
    inc = IncrementalFDX()
    inc.add_batch(fd_relation(400))
    cold = inc.discover()
    warm = inc.discover(warm_start=cold.precision)
    assert warm.diagnostics["warm_start"] is True
    assert cold.diagnostics["warm_start"] is False
    assert set(warm.fds) == set(cold.fds)
