"""Tests for repro.prep.detection (constraint-based error detection)."""

import numpy as np
import pytest

from repro.constraints.denial import DenialConstraint, Predicate
from repro.core.fd import FD
from repro.dataset.noise import RandomFlipNoise
from repro.dataset.relation import Relation
from repro.prep.detection import ErrorReport, detect_errors, score_detection

FD_ZIP_CITY = FD(["zip"], "city")


def clean_relation(n=400, seed=0):
    rng = np.random.default_rng(seed)
    city_of = {z: f"city_{z % 5}" for z in range(10)}
    rows = []
    for _ in range(n):
        z = int(rng.integers(10))
        rows.append((z, city_of[z], int(rng.integers(4))))
    return Relation.from_rows(["zip", "city", "other"], rows)


def test_clean_data_has_no_flags():
    report = detect_errors(clean_relation(), fds=[FD_ZIP_CITY])
    assert report.cell_scores == {}
    assert report.flagged() == set()


def test_fd_evidence_flags_corrupted_cells():
    rel = clean_relation()
    noisy, noise = RandomFlipNoise(0.05, attributes=["city"]).apply(
        rel, np.random.default_rng(1)
    )
    report = detect_errors(noisy, fds=[FD_ZIP_CITY])
    prf = score_detection(report, noise, threshold=0.5)
    assert prf.precision > 0.9
    assert prf.recall > 0.7


def test_dc_evidence_contributes():
    rel = clean_relation()
    noisy, noise = RandomFlipNoise(0.05, attributes=["city"]).apply(
        rel, np.random.default_rng(2)
    )
    dc = DenialConstraint((Predicate("zip", "="), Predicate("city", "!=")))
    report = detect_errors(noisy, dcs=[dc], n_pairs=20_000)
    # Both sides of a violating pair are implicated; the corrupted cell
    # participates in many violating pairs, scoring highest.
    flagged = report.flagged(0.3)
    hits = flagged & noise.cells
    assert hits, "DC evidence found no corrupted cells"


def test_scores_bounded():
    rel = clean_relation()
    noisy, _ = RandomFlipNoise(0.1, attributes=["city"]).apply(
        rel, np.random.default_rng(3)
    )
    dc = DenialConstraint((Predicate("zip", "="), Predicate("city", "!=")))
    report = detect_errors(noisy, fds=[FD_ZIP_CITY], dcs=[dc])
    assert report.cell_scores
    assert all(0.0 < s <= 1.0 for s in report.cell_scores.values())
    # FD evidence carries group confidence; the strongest cells score high.
    assert max(report.cell_scores.values()) > 0.8


def test_top_k_ranked():
    rel = clean_relation()
    noisy, _ = RandomFlipNoise(0.1, attributes=["city"]).apply(
        rel, np.random.default_rng(4)
    )
    report = detect_errors(noisy, fds=[FD_ZIP_CITY])
    top = report.top(5)
    assert len(top) <= 5
    scores = [s for _, s in top]
    assert scores == sorted(scores, reverse=True)


def test_combined_evidence_outranks_single_source():
    rel = clean_relation()
    noisy, noise = RandomFlipNoise(0.05, attributes=["city"]).apply(
        rel, np.random.default_rng(5)
    )
    dc = DenialConstraint((Predicate("zip", "="), Predicate("city", "!=")))
    combined = detect_errors(noisy, fds=[FD_ZIP_CITY], dcs=[dc], n_pairs=20_000)
    fd_only = detect_errors(noisy, fds=[FD_ZIP_CITY])
    prf_combined = score_detection(combined, noise, threshold=0.3)
    prf_fd = score_detection(fd_only, noise, threshold=0.3)
    assert prf_combined.recall >= prf_fd.recall - 0.05


def test_score_detection_empty_cases():
    from repro.dataset.noise import NoiseReport

    assert score_detection(ErrorReport(), NoiseReport()).precision == 0.0
    report = ErrorReport(cell_scores={(0, "a"): 1.0})
    prf = score_detection(report, NoiseReport())
    assert prf.recall == 0.0


def test_end_to_end_with_discovered_constraints():
    from repro import FDX
    from repro.constraints import DenialConstraintDiscovery

    rel = clean_relation(600)
    noisy, noise = RandomFlipNoise(0.04, attributes=["city"]).apply(
        rel, np.random.default_rng(6)
    )
    fds = FDX().discover(noisy).fds
    dcs = DenialConstraintDiscovery(
        max_predicates=2, max_violation_rate=0.05
    ).discover(noisy).constraints
    report = detect_errors(noisy, fds=fds, dcs=dcs)
    prf = score_detection(report, noise, threshold=0.5)
    assert prf.recall > 0.5
