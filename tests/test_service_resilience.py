"""Service robustness: load shedding, idempotent retries, deadlines, shutdown."""

import email.message
import io
import threading
import urllib.error

import pytest

from repro.dataset.relation import Relation
from repro.service import QueueFullError, ServiceClient, ServiceError, start_in_thread
from repro.service.client import _retryable_status
from repro.service.jobs import CANCELLED, DONE, JobManager
from repro.service.protocol import ProtocolError, relation_to_wire
from repro.service.server import DiscoveryService


def small_relation(seed=0, n=60):
    rows = [((i + seed) % 5, ((i + seed) % 5) % 2, i % 3) for i in range(n)]
    return Relation.from_rows(["x", "y", "z"], rows)


def discover_payload(seed=0, **extra):
    payload = {"relation": relation_to_wire(small_relation(seed)), **extra}
    return payload


class _Gate:
    """A job body that blocks until released, to wedge the worker pool."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self):
        self.entered.set()
        self.release.wait(timeout=30)
        return {"ok": True}


# -- admission control / load shedding ---------------------------------------

class TestLoadShedding:
    def test_job_manager_sheds_past_queue_depth(self):
        manager = JobManager(workers=1, max_queue_depth=1)
        gate = _Gate()
        try:
            running = manager.submit(gate)
            assert gate.entered.wait(timeout=5)
            queued = manager.submit(lambda: "queued")
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(lambda: "shed")
            assert excinfo.value.retry_after_seconds >= 1.0
            assert "queue is full" in str(excinfo.value)
            assert manager.stats()["shed"] == 1
        finally:
            gate.release.set()
            running.wait(timeout=5)
            queued.wait(timeout=5)
            manager.shutdown(wait=True, drain=True)

    def test_http_429_carries_retry_after(self):
        with start_in_thread(workers=1, max_queue_depth=1) as handle:
            client = ServiceClient(handle.base_url, timeout=10.0, retry=None)
            client.wait_until_healthy()
            gate = _Gate()
            wedge = handle.service.jobs.submit(gate)
            try:
                assert gate.entered.wait(timeout=5)
                first = client.discover_raw(small_relation(seed=1), wait=False)
                assert first["job_id"]
                with pytest.raises(ServiceError) as excinfo:
                    client.discover_raw(small_relation(seed=2), wait=False)
                err = excinfo.value
                assert err.status == 429
                assert err.retryable is True
                # Retry-After came back (header, with body fallback).
                assert err.retry_after is not None and err.retry_after >= 1
            finally:
                gate.release.set()
                wedge.wait(timeout=5)
            # Shedding is visible to operators on every surface.
            client.wait_for_job(first["job_id"], timeout=30)
            assert client.statusz()["jobs"]["shed"] >= 1
            assert client.metrics()["counters"]["requests_shed"] >= 1
            prom = client.metrics_prometheus()
            assert "jobs_shed_total" in prom

    def test_shed_request_succeeds_on_client_retry(self):
        # After the backlog drains, the same request goes through: the
        # retrying client turns a shed into latency, not an error.
        with start_in_thread(workers=1, max_queue_depth=1) as handle:
            from repro.resilience import RetryPolicy

            client = ServiceClient(
                handle.base_url, timeout=10.0,
                retry=RetryPolicy(max_attempts=4, base_delay=0.05,
                                  max_delay=0.2, budget_seconds=20.0),
                retry_seed=0,
            )
            client.wait_until_healthy()
            gate = _Gate()
            wedge = handle.service.jobs.submit(gate)
            assert gate.entered.wait(timeout=5)
            filler = client.discover_raw(small_relation(seed=3), wait=False)

            # Unwedge shortly after the shed lands so the retry succeeds.
            unwedge = threading.Timer(0.3, gate.release.set)
            unwedge.start()
            try:
                # Only explicitly-idempotent submits are retried; a bare
                # POST would (correctly) fail fast on the 429.
                envelope = client.discover_raw(
                    small_relation(seed=4), wait=False, idempotency_key="retry-key"
                )
            finally:
                unwedge.cancel()
                gate.release.set()
            assert envelope["job_id"]
            assert client.retries_total >= 1
            wedge.wait(timeout=5)
            client.wait_for_job(filler["job_id"], timeout=30)
            client.wait_for_job(envelope["job_id"], timeout=30)


# -- idempotency --------------------------------------------------------------

class TestIdempotency:
    def test_same_key_reattaches_to_same_job(self):
        service = DiscoveryService(workers=1, max_queue_depth=8)
        gate = _Gate()
        wedge = service.jobs.submit(gate)
        try:
            assert gate.entered.wait(timeout=5)
            payload = discover_payload(seed=5, wait=False)
            status1, body1 = service.discover(payload, idempotency_key="key-1")
            status2, body2 = service.discover(payload, idempotency_key="key-1")
            assert status1 == status2 == 202
            assert body2["job_id"] == body1["job_id"]
            counters = service.metrics.snapshot()["counters"]
            assert counters["idempotent_replays"] == 1
        finally:
            gate.release.set()
            wedge.wait(timeout=5)
        assert service.jobs.get(body1["job_id"]).wait(timeout=30) == DONE
        # One job did the work, despite two submits.
        counters = service.metrics.snapshot()["counters"]
        assert counters.get("fdx_discoveries_total", 0) <= 1
        service.close()

    def test_different_keys_get_different_jobs(self):
        service = DiscoveryService(workers=1, max_queue_depth=8)
        gate = _Gate()
        wedge = service.jobs.submit(gate)
        try:
            assert gate.entered.wait(timeout=5)
            _, body1 = service.discover(discover_payload(seed=6, wait=False),
                                        idempotency_key="key-a")
            _, body2 = service.discover(discover_payload(seed=7, wait=False),
                                        idempotency_key="key-b")
            assert body1["job_id"] != body2["job_id"]
        finally:
            gate.release.set()
            wedge.wait(timeout=5)
        service.jobs.get(body1["job_id"]).wait(timeout=30)
        service.jobs.get(body2["job_id"]).wait(timeout=30)
        service.close()


# -- deadlines ----------------------------------------------------------------

class TestDeadlines:
    def test_deadline_seconds_becomes_job_timeout(self):
        service = DiscoveryService(workers=1, job_timeout=300.0)
        status, body = service.discover(
            discover_payload(seed=8, wait=False, deadline_seconds=7.5)
        )
        assert status == 202
        job = service.jobs.get(body["job_id"])
        assert job.timeout == 7.5
        job.wait(timeout=30)
        service.close()

    def test_invalid_deadline_rejected(self):
        service = DiscoveryService(workers=1)
        for bad in (0, -1, "soon", True):
            with pytest.raises(ProtocolError, match="deadline_seconds"):
                service.discover(discover_payload(seed=9, deadline_seconds=bad))
        service.close()

    def test_invalid_relation_rejected_at_admission(self):
        service = DiscoveryService(workers=1)
        payload = {"relation": relation_to_wire(Relation.from_rows(["a", "b"], []))}
        with pytest.raises(ProtocolError, match="no rows"):
            service.discover(payload)
        service.close()


# -- shutdown -----------------------------------------------------------------

class TestShutdown:
    def test_shutdown_cancels_queued_jobs(self):
        manager = JobManager(workers=1)
        gate = _Gate()
        running = manager.submit(gate)
        assert gate.entered.wait(timeout=5)
        queued = [manager.submit(lambda: "later") for _ in range(3)]

        manager.shutdown(wait=False, drain=False)
        # Queued jobs reach a *terminal* state — no poller is left
        # watching a forever-QUEUED job (the shutdown-hang bug).
        for job in queued:
            assert job.wait(timeout=5) == CANCELLED
            assert job.error
        # The running job's cooperative-cancel token is set.
        assert running.cancel_token.is_set()
        gate.release.set()
        assert running.wait(timeout=5) == CANCELLED

    def test_shutdown_drain_lets_queued_jobs_finish(self):
        manager = JobManager(workers=1)
        jobs = [manager.submit(lambda i=i: i * i) for i in range(4)]
        manager.shutdown(wait=True, drain=True)
        assert [job.wait(timeout=5) for job in jobs] == [DONE] * 4
        assert [job.result for job in jobs] == [0, 1, 4, 9]

    def test_submit_after_shutdown_rejected(self):
        manager = JobManager(workers=1)
        manager.shutdown(wait=True, drain=True)
        with pytest.raises(RuntimeError, match="shut down"):
            manager.submit(lambda: None)


# -- client error classification ----------------------------------------------

def _http_error(code, body=b"{}", headers=None):
    msg = email.message.Message()
    for key, value in (headers or {}).items():
        msg[key] = value
    return urllib.error.HTTPError(
        "http://test/v1/discover", code, "err", msg, io.BytesIO(body)
    )


class TestRetryableClassification:
    def test_status_classification(self):
        assert _retryable_status(429) and _retryable_status(500)
        assert _retryable_status(503)
        assert not _retryable_status(400) and not _retryable_status(404)

    def test_error_from_http_parses_retry_after_header(self):
        err = ServiceClient._error_from_http(
            _http_error(429, headers={"Retry-After": "3"})
        )
        assert err.status == 429 and err.retryable and err.retry_after == 3.0

    def test_error_from_http_falls_back_to_body_field(self):
        body = b'{"error": {"message": "full", "retry_after_seconds": 2.5}}'
        err = ServiceClient._error_from_http(_http_error(429, body=body))
        assert err.retry_after == 2.5 and str(err) == "full"

    def test_client_errors_are_not_retryable(self):
        err = ServiceClient._error_from_http(_http_error(400))
        assert err.retryable is False and err.retry_after is None

    def test_transport_error_is_retryable(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.2, retry=None)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.retryable is True
        assert excinfo.value.status is None
