"""Tests for the service's catalog batch mode (POST/GET /v1/catalog)."""

import sqlite3
import time

import pytest

from repro.resilience.faults import FaultInjector
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import DiscoveryService, start_in_thread


@pytest.fixture
def catalog_db(tmp_path):
    path = tmp_path / "cat.sqlite"
    conn = sqlite3.connect(path)
    conn.execute(
        "CREATE TABLE orders (order_id INT, customer_id INT, zip TEXT, city TEXT)"
    )
    conn.execute("CREATE TABLE customers (customer_id INT, name TEXT, region TEXT)")
    conn.executemany(
        "INSERT INTO orders VALUES (?,?,?,?)",
        [(i, i % 50, f"z{i % 20:02d}", f"c{(i % 20) % 10}") for i in range(400)],
    )
    conn.executemany(
        "INSERT INTO customers VALUES (?,?,?)",
        [(i, f"n{i}", f"r{i % 5}") for i in range(50)],
    )
    conn.commit()
    conn.close()
    return str(path)


@pytest.fixture
def server():
    handle = start_in_thread(workers=2)
    try:
        client = ServiceClient(handle.base_url)
        client.wait_until_healthy()
        yield handle, client
    finally:
        handle.shutdown()


def test_catalog_submit_wait_and_report(server, catalog_db):
    _, client = server
    status = client.sweep({"kind": "sqlite", "path": catalog_db}, sample=500)
    assert status["complete"]
    assert status["counts"] == {"total": 2, "done": 2, "error": 0, "pending": 0}
    report = status["report"]
    assert report["totals"]["fds"] >= 1
    assert report["totals"]["hints"] >= 1
    orders = [t for t in report["tables"] if t["table"] == "orders"][0]
    assert orders["sampling"]["standard_error"]  # error bars on the wire
    assert orders["sampling"]["adequate"] is True


def test_catalog_incremental_get(server, catalog_db):
    _, client = server
    submitted = client.sweep(
        {"kind": "sqlite", "path": catalog_db}, wait=False, sample=400
    )
    catalog_id = submitted["catalog_id"]
    assert {e["table"] for e in submitted["tables"]} == {"customers", "orders"}
    deadline = time.monotonic() + 60
    while True:
        status = client.catalog(catalog_id)
        assert status["counts"]["total"] == 2
        if status["complete"]:
            break
        assert "report" not in status
        assert time.monotonic() < deadline
        time.sleep(0.02)
    assert status["report"]["totals"]["tables_ok"] == 2
    # a repeat GET serves the same assembled report
    assert client.catalog(catalog_id)["report"] == status["report"]


def test_catalog_injected_failure_is_per_table(catalog_db):
    service = DiscoveryService(workers=2)
    try:
        injector = FaultInjector(seed=1)
        injector.inject("catalog.table", times=1)
        with injector.install():
            status_code, body = service.catalog_submit(
                {"source": {"kind": "sqlite", "path": catalog_db},
                 "sample": 300, "wait": True}
            )
        assert status_code == 200
        report = body["report"]
        assert report["totals"]["tables_error"] == 1
        assert report["totals"]["tables_ok"] == 1
        (failed,) = [t for t in report["tables"] if t["status"] == "error"]
        assert "injected failure" in failed["error"]["message"]
        snapshot = service.registry.snapshot()
        assert snapshot["counters"]["catalog_tables_total{status=error}"] == 1.0
        assert snapshot["histograms"]["catalog_sweep_seconds"]["count"] == 1
    finally:
        service.close()


def test_catalog_validation_errors(server, tmp_path):
    _, client = server
    with pytest.raises(ServiceError) as exc:
        client.sweep({"kind": "oracle", "path": "x"})
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        client.sweep({"kind": "sqlite", "path": str(tmp_path / "nope.db")})
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        client.catalog("doesnotexist")
    assert exc.value.status == 404


def test_catalog_unknown_fields_rejected(catalog_db):
    service = DiscoveryService(workers=1)
    try:
        status_code, body = service.catalog_submit(
            {"source": {"kind": "sqlite", "path": catalog_db}, "smaple": 10}
        )
        assert status_code == 400
        assert "smaple" in body["error"]["message"]
    finally:
        service.close()


def test_catalog_idempotent_replay(catalog_db):
    service = DiscoveryService(workers=2)
    try:
        payload = {
            "source": {"kind": "sqlite", "path": catalog_db},
            "sample": 300, "wait": True,
        }
        first_code, first = service.catalog_submit(payload, idempotency_key="k1")
        replay_code, replay = service.catalog_submit(payload, idempotency_key="k1")
        assert first_code == replay_code == 200
        assert replay["idempotent_replay"] is True
        assert replay["catalog_id"] == first["catalog_id"]
        assert replay["report"] == first["report"]
    finally:
        service.close()


def test_catalog_jobs_visible_in_job_api(catalog_db):
    service = DiscoveryService(workers=2)
    try:
        _, body = service.catalog_submit(
            {"source": {"kind": "sqlite", "path": catalog_db},
             "sample": 300, "wait": True}
        )
        for entry in body["tables"]:
            status_code, job_body = service.job_status(entry["job_id"])
            assert status_code == 200
            assert job_body["kind"] == "catalog"
            assert job_body["state"] == "done"
    finally:
        service.close()
