"""Tests for sweep orchestration: discovery, isolation, cancellation."""

import sqlite3

import pytest

from repro.catalog import SqliteConnector, SweepConfig, sweep
from repro.errors import CatalogError
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import ListSink
from repro.obs.trace import Tracer
from repro.resilience.cancel import CancelToken
from repro.resilience.faults import FaultInjector


@pytest.fixture
def catalog_db(tmp_path):
    path = tmp_path / "cat.sqlite"
    conn = sqlite3.connect(path)
    conn.execute(
        "CREATE TABLE orders (order_id INT, customer_id INT, zip TEXT, city TEXT)"
    )
    conn.execute("CREATE TABLE customers (customer_id INT, name TEXT, region TEXT)")
    conn.execute("CREATE TABLE items (item_id INT, amount REAL, grade TEXT)")
    conn.executemany(
        "INSERT INTO orders VALUES (?,?,?,?)",
        [(i, i % 50, f"z{i % 20:02d}", f"c{(i % 20) % 10}") for i in range(400)],
    )
    conn.executemany(
        "INSERT INTO customers VALUES (?,?,?)",
        [(i, f"n{i}", f"r{i % 5}") for i in range(50)],
    )
    conn.executemany(
        "INSERT INTO items VALUES (?,?,?)",
        [(i, (i % 13) / 2.0, f"g{i % 4}") for i in range(200)],
    )
    conn.commit()
    conn.close()
    return str(path)


def test_serial_sweep_finds_fds_and_hints(catalog_db):
    report = sweep(SqliteConnector(catalog_db), SweepConfig(sample=500))
    totals = report.totals
    assert totals["tables"] == 3 and totals["tables_error"] == 0
    orders = report.table("orders")
    # city is functionally determined (zip -> city by construction; the
    # model may pick the equivalent determinant through customer_id).
    assert any(fd["rhs"] == "city" for fd in orders.fds)
    assert orders.sampling["adequate"]
    assert any(h["kind"] == "foreign_key_candidate" for h in report.hints)
    # sampled error bars ride every successful table
    for t in report.tables:
        assert t.sampling["standard_error"]


def test_sweep_is_deterministic(catalog_db):
    config = SweepConfig(sample=300, seed=11)
    a = sweep(SqliteConnector(catalog_db), config).to_dict()
    b = sweep(SqliteConnector(catalog_db), config).to_dict()
    a.pop("seconds"), b.pop("seconds")
    for t in a["tables"] + b["tables"]:
        t.pop("seconds")
        t["diagnostics"].pop("stage_seconds", None)
        t["diagnostics"].pop("timing", None)
    assert [t["fds"] for t in a["tables"]] == [t["fds"] for t in b["tables"]]
    assert [t["sampling"] for t in a["tables"]] == [t["sampling"] for t in b["tables"]]
    assert a["hints"] == b["hints"]


def test_injected_table_fault_yields_one_error_record(catalog_db):
    injector = FaultInjector(seed=1)
    injector.inject("catalog.table", times=1)
    with injector.install():
        report = sweep(SqliteConnector(catalog_db), SweepConfig(sample=300))
    totals = report.totals
    assert totals["tables_error"] == 1 and totals["tables_ok"] == 2
    (failed,) = [t for t in report.tables if t.status == "error"]
    assert failed.error["type"] == "InjectedFault"
    assert failed.table in failed.error["message"]


def test_worker_crash_isolated_to_its_table(catalog_db):
    """A hard child-process death becomes error records, never an abort.

    The injector travels into every forked child (each inherits its own
    times=1 budget), so every table's worker dies — the sweep must still
    return a full report of typed error records.
    """
    injector = FaultInjector(seed=1)
    injector.inject("parallel.worker_crash", times=1)
    with injector.install():
        report = sweep(
            SqliteConnector(catalog_db),
            SweepConfig(sample=300, backend="process", workers=2),
        )
    assert len(report.tables) == 3
    assert all(t.status == "error" for t in report.tables)
    assert all(t.error["type"] == "WorkerCrashError" for t in report.tables)


def test_process_backend_matches_serial_results(catalog_db):
    serial = sweep(SqliteConnector(catalog_db), SweepConfig(sample=300))
    process = sweep(
        SqliteConnector(catalog_db),
        SweepConfig(sample=300, backend="process", workers=2),
    )
    assert [t.fds for t in serial.tables] == [t.fds for t in process.tables]
    assert serial.hints == process.hints


def test_thread_backend_guards_logical_failures(catalog_db):
    injector = FaultInjector(seed=1)
    injector.inject("catalog.table", times=1)
    with injector.install():
        report = sweep(
            SqliteConnector(catalog_db),
            SweepConfig(sample=300, backend="thread", workers=2),
        )
    assert report.totals["tables_error"] == 1


def test_pre_cancelled_sweep_yields_cancelled_records(catalog_db):
    token = CancelToken()
    token.set("shutdown")
    report = sweep(
        SqliteConnector(catalog_db), SweepConfig(sample=300), cancel_token=token
    )
    assert all(t.status == "error" for t in report.tables)
    assert all(t.error["type"] == "CancelledError" for t in report.tables)


def test_sweep_metrics_and_span_tree(catalog_db):
    registry = MetricsRegistry()
    sink = ListSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    sweep(
        SqliteConnector(catalog_db), SweepConfig(sample=300),
        registry=registry, tracer=tracer,
    )
    snapshot = registry.snapshot()
    assert snapshot["counters"].get("catalog_tables_total{status=ok}") == 3.0
    assert snapshot["histograms"]["catalog_sweep_seconds"]["count"] == 1
    names = [e.get("name") for e in sink.events if e.get("type") == "span"]
    assert "catalog.sweep" in names
    assert names.count("catalog.table") == 3


def test_sweep_config_validation():
    with pytest.raises(CatalogError, match="unknown sweep backend"):
        SweepConfig(backend="gpu")
    with pytest.raises(CatalogError, match="sample size"):
        SweepConfig(sample=1)
    with pytest.raises(CatalogError, match="unknown sweep config"):
        SweepConfig.from_dict({"samples": 10})
    config = SweepConfig(sample=64, hyperparameters={"lam": 0.1})
    assert SweepConfig.from_dict(config.to_dict()) == config
