"""Tests for the ledger-driven parallel_min_rows calibration."""

import json

import pytest

from repro.parallel.calibrate import (
    DEFAULT_MIN_ROWS,
    ENV_LEDGER_DIR,
    ENV_MIN_ROWS,
    MAX_GATE,
    MIN_GATE,
    calibrated_min_rows,
    crossover_from_run,
)


def _run(serial: float, parallel: float, smoke: bool = False) -> dict:
    return {
        "smoke": smoke,
        "results": {
            "transform_cov_serial": {"seconds": serial},
            "transform_cov_process_4workers": {"seconds": parallel},
        },
    }


def test_crossover_basic_fit():
    # serial: 0.5s at 50k rows -> 10 us/row; parallel overhead:
    # 0.25 - 0.5/4 = 0.125 s; crossover = 0.125*4 / (1e-5 * 3) = 16666
    n = crossover_from_run(_run(0.5, 0.25))
    assert n == pytest.approx(16_666, abs=2)


def test_crossover_parallel_never_wins_hits_cap():
    # Parallel slower than serial at the observed size and overhead so
    # large the fitted crossover exceeds the cap entirely.
    n = crossover_from_run(_run(0.01, 5.0))
    assert n == MAX_GATE


def test_crossover_zero_overhead_floors_at_min_gate():
    assert crossover_from_run(_run(0.4, 0.1)) == MIN_GATE


def test_crossover_smoke_runs_use_smoke_rows():
    full = crossover_from_run(_run(0.5, 0.25, smoke=False))
    smoke = crossover_from_run(_run(0.5, 0.25, smoke=True))
    # Same timings at 4k rows instead of 50k mean a higher per-row cost,
    # hence a smaller fitted crossover.
    assert smoke < full


def test_crossover_missing_cases_returns_none():
    assert crossover_from_run({"smoke": False, "results": {}}) is None
    assert crossover_from_run({}) is None


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv(ENV_MIN_ROWS, "12345")
    assert calibrated_min_rows() == 12345
    monkeypatch.setenv(ENV_MIN_ROWS, "0")
    assert calibrated_min_rows() == 0


def test_unparseable_env_falls_through(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_MIN_ROWS, "lots")
    monkeypatch.setenv(ENV_LEDGER_DIR, str(tmp_path))
    assert calibrated_min_rows() == DEFAULT_MIN_ROWS


def test_missing_ledger_returns_default(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_MIN_ROWS, raising=False)
    monkeypatch.setenv(ENV_LEDGER_DIR, str(tmp_path))
    assert calibrated_min_rows() == DEFAULT_MIN_ROWS
    assert calibrated_min_rows(default=999) == 999


def test_ledger_calibration_and_full_over_smoke(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_MIN_ROWS, raising=False)
    monkeypatch.setenv(ENV_LEDGER_DIR, str(tmp_path))
    ledger = {
        "suite": "parallel",
        "runs": [
            _run(0.5, 0.25, smoke=False),   # older full run
            _run(0.5, 0.25, smoke=True),    # newest run is smoke
        ],
    }
    (tmp_path / "BENCH_parallel.json").write_text(json.dumps(ledger))
    # Newest *full* run wins over the newer smoke run.
    assert calibrated_min_rows() == crossover_from_run(_run(0.5, 0.25))


def test_corrupt_ledger_returns_default(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_MIN_ROWS, raising=False)
    monkeypatch.setenv(ENV_LEDGER_DIR, str(tmp_path))
    (tmp_path / "BENCH_parallel.json").write_text("{not json")
    assert calibrated_min_rows() == DEFAULT_MIN_ROWS


def test_fdx_uses_calibrated_gate(monkeypatch, tmp_path):
    """FDX(parallel_min_rows=None) consults the calibration (env path)."""
    from repro.core.fdx import FDX
    from repro.datagen.synthetic import SyntheticSpec, generate

    monkeypatch.setenv(ENV_MIN_ROWS, "1000000000")
    ds = generate(SyntheticSpec(n_tuples=60, n_attributes=4, seed=0))
    result = FDX(n_jobs=4, parallel_backend="thread").discover(ds.relation)
    # Gate far above the input size: the run stays serial.
    assert result.diagnostics["parallel"]["backend"] == "serial"
