"""Tests for the benchmark regression ledger and detector."""

import json

import pytest

from repro.cli import main
from repro.obs import bench


def _run(name_to_seconds, **extra):
    return {
        "results": {
            name: {"seconds": seconds, "repeats": 3}
            for name, seconds in name_to_seconds.items()
        },
        **extra,
    }


# -- detector ----------------------------------------------------------------

def test_detector_flags_2x_slowdown():
    history = [_run({"glasso": s}) for s in (0.100, 0.103, 0.098, 0.101)]
    regressions = bench.detect_regressions(history, _run({"glasso": 0.200}))
    assert len(regressions) == 1
    regression = regressions[0]
    assert regression.name == "glasso"
    assert regression.seconds == pytest.approx(0.200)
    assert "glasso" in regression.describe()


def test_detector_passes_on_recorded_trajectory():
    timings = [0.100, 0.103, 0.098, 0.101, 0.099]
    history = [_run({"glasso": s}) for s in timings]
    for timing in timings:
        assert bench.detect_regressions(history, _run({"glasso": timing})) == []


def test_detector_rel_floor_absorbs_jitter_when_mad_is_zero():
    # Identical history -> MAD 0; only the relative floor guards.
    history = [_run({"udu": 0.010})] * 5
    assert bench.detect_regressions(history, _run({"udu": 0.012})) == []
    assert bench.detect_regressions(history, _run({"udu": 0.0131})) != []


def test_detector_mad_term_tolerates_noisy_history():
    # Noisy trajectory: the MAD widens the gate beyond the 30% floor.
    history = [_run({"t": s}) for s in (0.10, 0.16, 0.09, 0.15, 0.11)]
    assert bench.detect_regressions(history, _run({"t": 0.16})) == []


def test_detector_robust_to_single_historical_outlier():
    # One crazy historical run must not widen the gate (median + MAD).
    history = [_run({"t": s}) for s in (0.10, 0.10, 0.10, 0.10, 5.0)]
    assert bench.detect_regressions(history, _run({"t": 0.21})) != []


def test_detector_skips_thin_history_and_new_benchmarks():
    history = [_run({"old": 0.1})]
    run = _run({"old": 10.0, "brand_new": 1.0})
    assert bench.detect_regressions(history, run, min_history=2) == []


# -- ledger ------------------------------------------------------------------

def test_ledger_append_and_load(tmp_path):
    path = bench.ledger_path("micro", str(tmp_path))
    assert bench.load_ledger(path) == {"suite": None, "runs": []}
    bench.append_run(path, "micro", _run({"a": 0.1}))
    document = bench.append_run(path, "micro", _run({"a": 0.2}))
    assert document["suite"] == "micro"
    assert [r["results"]["a"]["seconds"] for r in document["runs"]] == [0.1, 0.2]
    # The file is plain, pretty-printed JSON (diff-friendly in git).
    assert json.loads((tmp_path / "BENCH_micro.json").read_text()) == document


def test_ledger_rejects_non_ledger_file(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text("[]")
    with pytest.raises(ValueError):
        bench.load_ledger(str(path))


def test_env_fingerprint_and_rss():
    env = bench.env_fingerprint()
    assert set(env) >= {"python", "numpy", "platform", "cpu_count"}
    assert bench.peak_rss_bytes() > 0


# -- runner + CLI ------------------------------------------------------------

def test_run_suite_smoke_records_all_cases():
    record = bench.run_suite("micro", repeat=1, smoke=True)
    assert set(record["results"]) == {
        "pair_transform", "graphical_lasso", "udu_factorization", "flight_record"
    }
    assert all(r["seconds"] > 0 for r in record["results"].values())
    assert record["smoke"] is True
    assert record["peak_rss_bytes"] > 0
    with pytest.raises(ValueError):
        bench.run_suite("nope")


def test_cli_bench_writes_ledger_and_gates(tmp_path):
    out = str(tmp_path)
    assert main(["bench", "--smoke", "--out", out]) == 0
    path = tmp_path / "BENCH_micro.json"
    assert path.exists()
    document = json.loads(path.read_text())
    assert len(document["runs"]) == 1

    # Inject a synthetic 2x slowdown into the trajectory twice (the
    # detector needs min_history), then verify the next honest run
    # passes while a doubled run fails with a non-zero exit.
    honest = document["runs"][0]
    for _ in range(2):
        bench.append_run(str(path), "micro", honest)
    doubled = json.loads(json.dumps(honest))
    for result in doubled["results"].values():
        result["seconds"] *= 2.0
    regressions = bench.detect_regressions(
        json.loads(path.read_text())["runs"], doubled
    )
    assert len(regressions) == len(honest["results"])

    assert main(["bench", "--smoke", "--out", out, "--no-record"]) in (0, 1)
    assert len(json.loads(path.read_text())["runs"]) == 3  # --no-record held


def test_cli_bench_exits_nonzero_on_injected_slowdown(tmp_path, monkeypatch):
    out = str(tmp_path)
    scale = {"factor": 1.0}

    def fake_run_suite(suite, repeat=3, smoke=False):
        return _run(
            {"glasso": 0.100 * scale["factor"], "udu": 0.050 * scale["factor"]},
            smoke=smoke,
        )

    monkeypatch.setattr(bench, "run_suite", fake_run_suite)
    # Record an honest trajectory, then inject a synthetic 2x slowdown.
    for _ in range(3):
        assert main(["bench", "--smoke", "--out", out]) == 0
    scale["factor"] = 2.0
    assert main(["bench", "--smoke", "--out", out, "--no-record"]) == 1
    assert main(["bench", "--smoke", "--out", out, "--no-record",
                 "--report-only"]) == 0


def test_cli_bench_unknown_suite(capsys):
    assert main(["bench", "--suite", "nope"]) == 2
    assert "unknown suite" in capsys.readouterr().err
