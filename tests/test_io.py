"""Tests for repro.dataset.io (CSV round-tripping)."""

import pytest

from repro.dataset.io import read_csv, read_csv_text, to_csv_text, write_csv
from repro.dataset.relation import MISSING, Relation
from repro.dataset.schema import Attribute, AttributeType, Schema


def test_read_csv_text_basic():
    rel = read_csv_text("a,b\n1,x\n2,y\n")
    assert rel.shape == (2, 2)
    assert rel.schema.type_of("a") is AttributeType.NUMERIC
    assert rel.schema.type_of("b") is AttributeType.CATEGORICAL
    assert rel.column("a")[0] == 1.0


def test_read_csv_text_missing_tokens():
    rel = read_csv_text("a,b\n,x\nNA,?\n")
    assert rel.column("a")[0] is MISSING
    assert rel.column("a")[1] is MISSING
    assert rel.column("b")[1] is MISSING


def test_read_csv_empty_raises():
    with pytest.raises(ValueError, match="empty CSV"):
        read_csv_text("")


def test_read_csv_ragged_raises():
    with pytest.raises(ValueError, match="arity"):
        read_csv_text("a,b\n1\n")


def test_read_csv_with_explicit_schema():
    schema = Schema([Attribute("a", AttributeType.CATEGORICAL), Attribute("b")])
    rel = read_csv_text("a,b\n1,x\n", schema=schema)
    assert rel.column("a")[0] == "1"  # stays a string under the given schema


def test_read_csv_schema_header_mismatch():
    schema = Schema(["x", "y"])
    with pytest.raises(ValueError, match="do not match"):
        read_csv_text("a,b\n1,2\n", schema=schema)


def test_numeric_column_with_all_missing_stays_categorical():
    rel = read_csv_text("a\nNA\nNA\n")
    assert rel.schema.type_of("a") is AttributeType.CATEGORICAL


def test_roundtrip_through_text():
    original = Relation.from_rows(["a", "b"], [("x", "1"), (MISSING, "2")])
    text = to_csv_text(original)
    back = read_csv_text(text)
    assert back.column("a")[1] is MISSING
    assert back.column("a")[0] == "x"


def test_roundtrip_through_file(tmp_path):
    original = Relation.from_rows(["a", "b"], [("x", "y"), ("z", "w")])
    path = tmp_path / "data.csv"
    write_csv(original, path)
    back = read_csv(path)
    assert back == original


def test_mixed_numeric_strings_sniffed_as_categorical():
    rel = read_csv_text("a\n1\nfoo\n")
    assert rel.schema.type_of("a") is AttributeType.CATEGORICAL
    assert list(rel.column("a")) == ["1", "foo"]
