"""SolverHealthMonitor unit tests: metrics, triggers, readiness verdicts."""

import pytest

from repro.obs.health import SolverHealthMonitor
from repro.obs.registry import MetricsRegistry


def run(
    converged=True,
    estimator="glasso",
    stage="configured",
    condition_number=10.0,
    iterations=5,
    duality_gap=1e-7,
    active_set_size=3,
    warm_start=False,
    lam=0.02,
):
    return {
        "stage": stage,
        "estimator": estimator,
        "lam": lam,
        "iterations": iterations,
        "converged": converged,
        "objective": -1.0,
        "duality_gap": duality_gap,
        "active_set_size": active_set_size,
        "condition_number": condition_number,
        "warm_start": warm_start,
    }


def payload(*runs):
    return {"runs": list(runs), "lambda": {"mode": "fixed", "selected": 0.02}}


@pytest.fixture
def monitor():
    return SolverHealthMonitor(MetricsRegistry(), window=4, min_runs=2)


class TestObserve:
    def test_counts_and_histograms_land_in_the_registry(self, monitor):
        events = monitor.observe(payload(run(), run(converged=False)))
        snap = monitor.registry.snapshot()
        counters = snap["counters"]
        assert counters["solver_runs_total{estimator=glasso,status=converged}"] == 1
        assert counters["solver_runs_total{estimator=glasso,status=nonconverged}"] == 1
        assert counters["solver_starts_total{mode=cold}"] == 2
        assert {
            "solver_iterations", "solver_duality_gap",
            "solver_condition_number", "solver_active_set_size",
        } <= set(snap["histograms"])
        assert dict(events)["solver.nonconverge"]["runs"] == 1

    def test_triggers_aggregate_to_one_event_per_reason(self, monitor):
        events = dict(
            monitor.observe(
                payload(
                    run(converged=False, stage="configured"),
                    run(converged=False, stage="reconditioned"),
                    run(condition_number=1e12),
                )
            )
        )
        assert set(events) == {"solver.nonconverge", "solver.illconditioned"}
        assert events["solver.nonconverge"]["runs"] == 2
        assert events["solver.illconditioned"]["condition_number"] == 1e12

    def test_empty_or_missing_payload_is_a_noop(self, monitor):
        assert monitor.observe(None) == []
        assert monitor.observe({}) == []
        assert monitor.observe({"runs": ["not-a-dict"]}) == []
        assert monitor.runs_total == 0


class TestReadiness:
    def test_single_bad_run_does_not_degrade_a_fresh_monitor(self, monitor):
        monitor.observe(payload(run(converged=False)))
        assert monitor.status() == "ok"  # below min_runs

    def test_nonconverging_window_degrades(self, monitor):
        monitor.observe(payload(run(converged=False), run(converged=False)))
        assert monitor.status() == "nonconverging"
        summary = monitor.summary()
        assert summary["status"] == "nonconverging"
        assert summary["recent_nonconverged_ratio"] == 1.0

    def test_illconditioned_window_degrades(self, monitor):
        monitor.observe(payload(run(), run(condition_number=1e9)))
        assert monitor.status() == "illconditioned"
        assert monitor.summary()["recent_max_condition_number"] == 1e9

    def test_healthy_runs_push_bad_ones_out_of_the_window(self, monitor):
        monitor.observe(payload(run(converged=False), run(converged=False)))
        assert monitor.status() == "nonconverging"
        monitor.observe(payload(*[run() for _ in range(4)]))  # window=4
        assert monitor.status() == "ok"
        # Lifetime totals keep the history the window forgot.
        assert monitor.summary()["nonconverged_total"] == 2
