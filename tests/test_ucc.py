"""Tests for repro.baselines.ucc (unique column combinations)."""

import numpy as np
import pytest

from repro.baselines.tane import TimeBudgetExceeded
from repro.baselines.ucc import UccDiscovery
from repro.dataset.relation import MISSING, Relation


def keyed_relation(n=120, seed=0):
    rng = np.random.default_rng(seed)
    rows = [(i, i % 8, i // 8, int(rng.integers(3))) for i in range(n)]
    # (b, c) jointly reconstruct i -> also a key; a alone is not.
    return Relation.from_rows(["id", "b", "c", "noise"], rows)


def test_single_column_key_found():
    res = UccDiscovery().discover(keyed_relation())
    assert frozenset({"id"}) in res.uccs


def test_composite_key_found_and_minimal():
    res = UccDiscovery(max_size=2).discover(keyed_relation())
    assert frozenset({"b", "c"}) in res.uccs
    # No UCC is a superset of another.
    for u in res.uccs:
        for v in res.uccs:
            assert u == v or not (u < v)


def test_supersets_of_keys_not_reported():
    res = UccDiscovery(max_size=3).discover(keyed_relation())
    assert frozenset({"id", "noise"}) not in res.uccs


def test_no_keys_in_duplicated_relation():
    rel = Relation.from_rows(["a", "b"], [(1, 2)] * 10)
    res = UccDiscovery(max_size=2).discover(rel)
    assert res.uccs == []


def test_approximate_ucc_tolerates_duplicates():
    rows = [(i,) for i in range(98)] + [(0,), (1,)]  # two duplicate ids
    rel = Relation.from_rows(["id"], rows)
    strict = UccDiscovery(max_error=0.0).discover(rel)
    loose = UccDiscovery(max_error=0.05).discover(rel)
    assert frozenset({"id"}) not in strict.uccs
    assert frozenset({"id"}) in loose.uccs
    assert loose.errors[frozenset({"id"})] == pytest.approx(2 / 100)


def test_missing_values_never_match():
    """NULL != NULL: a column of all missing values is (vacuously) a key."""
    rel = Relation.from_rows(["x"], [(MISSING,)] * 10)
    res = UccDiscovery().discover(rel)
    assert frozenset({"x"}) in res.uccs


def test_max_size_respected():
    res = UccDiscovery(max_size=1).discover(keyed_relation())
    assert all(len(u) == 1 for u in res.uccs)


def test_time_limit():
    rng = np.random.default_rng(0)
    rows = [tuple(int(rng.integers(2)) for _ in range(16)) for _ in range(2000)]
    rel = Relation.from_rows([f"c{i}" for i in range(16)], rows)
    with pytest.raises(TimeBudgetExceeded):
        UccDiscovery(max_size=8, time_limit=0.01).discover(rel)


def test_invalid_params():
    with pytest.raises(ValueError):
        UccDiscovery(max_error=-1)
    with pytest.raises(ValueError):
        UccDiscovery(max_size=0)


def test_stats_recorded():
    res = UccDiscovery(max_size=2).discover(keyed_relation())
    assert res.candidates_checked > 0
    assert res.seconds > 0
