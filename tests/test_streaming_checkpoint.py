"""Tests for repro.streaming.checkpoint and session restore."""

import json
import os

import numpy as np
import pytest

from repro.core.fd import FD
from repro.dataset.relation import Relation
from repro.service.protocol import Hyperparameters
from repro.service.sessions import Session, SessionManager
from repro.streaming import (
    CHECKPOINT_VERSION,
    checkpoint_path,
    delete_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)


def fd_relation(n=600, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = int(rng.integers(15))
        rows.append((a, a % 5, int(rng.integers(6))))
    return Relation.from_rows(["a", "b", "c"], rows)


# -- file primitives ----------------------------------------------------------

def test_write_read_round_trip(tmp_path):
    directory = str(tmp_path)
    payload = {"hello": [1, 2, 3], "nested": {"x": 1.5}}
    path = write_checkpoint(directory, "sess-abc", payload)
    assert path == checkpoint_path(directory, "sess-abc")
    assert read_checkpoint(directory, "sess-abc") == payload


def test_read_missing_returns_none(tmp_path):
    assert read_checkpoint(str(tmp_path), "sess-nope") is None


def test_corrupt_file_returns_none(tmp_path):
    directory = str(tmp_path)
    with open(checkpoint_path(directory, "sess-bad"), "w") as fh:
        fh.write("{not json")
    assert read_checkpoint(directory, "sess-bad") is None


def test_version_mismatch_is_skipped(tmp_path):
    directory = str(tmp_path)
    with open(checkpoint_path(directory, "sess-old"), "w") as fh:
        json.dump(
            {"checkpoint_version": CHECKPOINT_VERSION + 1, "payload": {"x": 1}}, fh
        )
    assert read_checkpoint(directory, "sess-old") is None


def test_list_and_delete(tmp_path):
    directory = str(tmp_path)
    write_checkpoint(directory, "sess-b", {})
    write_checkpoint(directory, "sess-a", {})
    assert list_checkpoints(directory) == ["sess-a", "sess-b"]
    assert delete_checkpoint(directory, "sess-a") is True
    assert delete_checkpoint(directory, "sess-a") is False
    assert list_checkpoints(directory) == ["sess-b"]
    assert list_checkpoints(str(tmp_path / "missing")) == []


def test_unsafe_session_id_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_checkpoint(str(tmp_path), "../escape", {})


def test_write_leaves_no_temp_files(tmp_path):
    directory = str(tmp_path)
    write_checkpoint(directory, "sess-x", {"k": "v"})
    assert [n for n in os.listdir(directory) if n.endswith(".tmp")] == []


# -- session round trip -------------------------------------------------------

def test_session_checkpoint_round_trip():
    session = Session("sess-orig", Hyperparameters(refresh_every_rows=100))
    session.append(fd_relation(400))
    first = session.refresh()
    restored = Session.from_checkpoint("sess-orig", session.checkpoint_payload())
    assert restored.hyperparameters == session.hyperparameters
    assert restored.n_appends == session.n_appends
    assert restored.engine.n_rows_seen == session.engine.n_rows_seen
    assert restored.changelog.version == session.changelog.version
    assert set(restored.changelog.current_fds) == set(first.result.fds)
    # The restored precision warm-starts the first post-restart refresh.
    assert restored.last_precision is not None
    outcome = restored.refresh(force=True)
    assert outcome.warm is True
    assert set(outcome.result.fds) == set(first.result.fds)
    # Static data across the restart: no churn is reported, streaks grow.
    record = restored.changelog.since(1)[0]
    assert record.added == [] and record.removed == []
    assert restored.changelog.streak(FD(["a"], "b")) == 2


def test_manager_restores_sessions_from_checkpoint_dir(tmp_path):
    directory = str(tmp_path)
    manager = SessionManager(checkpoint_dir=directory)
    session = manager.create(Hyperparameters(decay=0.9))
    manager.append_batch(session.id, fd_relation(400))
    manager.discover(session.id)
    version = session.changelog.version

    # Simulate a restart: a brand-new manager over the same directory.
    revived = SessionManager(checkpoint_dir=directory)
    assert revived.restored == 1
    restored = revived.get(session.id)
    assert restored.hyperparameters.decay == 0.9
    assert restored.changelog.version == version
    assert revived.deltas(session.id, since=0)["version"] == version
    # And it keeps streaming: appends + refreshes work post-restore.
    revived.append_batch(session.id, fd_relation(200, seed=1))
    outcome = revived.discover(session.id)
    assert outcome.warm is True


def test_close_and_expiry_delete_checkpoints(tmp_path, monkeypatch):
    import repro.service.sessions as sessions_mod

    directory = str(tmp_path)
    now = [0.0]
    monkeypatch.setattr(sessions_mod.time, "monotonic", lambda: now[0])
    manager = SessionManager(ttl_seconds=10.0, checkpoint_dir=directory)
    closed = manager.create()
    expired = manager.create()
    assert len(list_checkpoints(directory)) == 2
    manager.close(closed.id)
    assert list_checkpoints(directory) == [expired.id]
    now[0] = 30.0
    assert len(manager) == 0  # sweep runs, expiring the idle session
    assert list_checkpoints(directory) == []


def test_corrupt_checkpoint_does_not_block_restore(tmp_path):
    directory = str(tmp_path)
    manager = SessionManager(checkpoint_dir=directory)
    session = manager.create()
    manager.append_batch(session.id, fd_relation(300))
    with open(checkpoint_path(directory, "sess-corrupt"), "w") as fh:
        fh.write("garbage")
    revived = SessionManager(checkpoint_dir=directory)
    assert revived.restored == 1
    assert revived.get(session.id).engine.n_rows_seen == 300
