"""Tests for repro.core.fd."""

import pytest

from repro.core.fd import FD, fd_edges, merge_by_rhs, minimal_cover


def test_fd_canonicalizes_lhs():
    assert FD(["b", "a"], "c") == FD(["a", "b"], "c")
    assert FD(["a", "a"], "c").lhs == ("a",)


def test_fd_rejects_trivial():
    with pytest.raises(ValueError, match="trivial"):
        FD(["a"], "a")


def test_fd_rejects_empty_lhs():
    with pytest.raises(ValueError, match="non-empty"):
        FD([], "a")


def test_fd_hashable_and_str():
    fd = FD(["x", "y"], "z")
    assert str(fd) == "x,y -> z"
    assert fd in {fd}
    assert fd.arity == 2


def test_edges():
    assert FD(["a", "b"], "c").edges() == {("a", "c"), ("b", "c")}


def test_fd_edges_union():
    fds = [FD(["a"], "c"), FD(["b"], "c"), FD(["a"], "d")]
    assert fd_edges(fds) == {("a", "c"), ("b", "c"), ("a", "d")}


def test_generalizes():
    assert FD(["a"], "c").generalizes(FD(["a", "b"], "c"))
    assert not FD(["a"], "c").generalizes(FD(["b"], "c"))
    assert not FD(["a"], "c").generalizes(FD(["a"], "d"))


def test_minimal_cover_drops_supersets():
    fds = [FD(["a"], "c"), FD(["a", "b"], "c"), FD(["b"], "d")]
    cover = minimal_cover(fds)
    assert FD(["a"], "c") in cover
    assert FD(["a", "b"], "c") not in cover
    assert FD(["b"], "d") in cover


def test_minimal_cover_deduplicates():
    fds = [FD(["a"], "c"), FD(["a"], "c")]
    assert minimal_cover(fds) == [FD(["a"], "c")]


def test_merge_by_rhs():
    fds = [FD(["a"], "c"), FD(["b"], "c"), FD(["x"], "y")]
    merged = merge_by_rhs(fds)
    assert FD(["a", "b"], "c") in merged
    assert FD(["x"], "y") in merged
    assert len(merged) == 2
