"""Tests for repro.baselines.hyfd (hybrid FD discovery)."""

import numpy as np
import pytest

from repro.baselines.hyfd import HyFD, minimal_hitting_sets
from repro.baselines.tane import Tane, TimeBudgetExceeded
from repro.core.fd import FD
from repro.dataset.relation import Relation


def exact_fd_relation(n=200, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        k = int(rng.integers(10))
        rows.append((k, k % 3, (k * 7) % 5, int(rng.integers(50))))
    return Relation.from_rows(["k", "a", "b", "z"], rows)


# --- minimal hitting sets ---------------------------------------------------

def test_mhs_simple():
    family = [frozenset("ab"), frozenset("bc")]
    sols = minimal_hitting_sets(family, list("abc"), max_size=2)
    assert frozenset("b") in sols
    assert frozenset("ac") in sols
    assert frozenset("ab") not in sols  # superset of {b}


def test_mhs_empty_family():
    assert minimal_hitting_sets([], list("ab"), 2) == [frozenset()]


def test_mhs_unhittable_empty_set():
    assert minimal_hitting_sets([frozenset()], list("ab"), 2) == []


def test_mhs_size_cap():
    family = [frozenset("a"), frozenset("b"), frozenset("c")]
    assert minimal_hitting_sets(family, list("abc"), max_size=2) == []
    sols = minimal_hitting_sets(family, list("abc"), max_size=3)
    assert sols == [frozenset("abc")]


def test_mhs_all_solutions_hit_everything():
    rng = np.random.default_rng(0)
    universe = list("abcde")
    family = [frozenset(rng.choice(universe, size=rng.integers(1, 4), replace=False))
              for _ in range(6)]
    for sol in minimal_hitting_sets(family, universe, 4):
        assert all(sol & s for s in family)


# --- HyFD end to end ---------------------------------------------------------

def test_discovers_exact_fds():
    res = HyFD().discover(exact_fd_relation())
    assert FD(["k"], "a") in res.fds
    assert FD(["k"], "b") in res.fds


def test_all_output_fds_are_exact():
    rel = exact_fd_relation()
    res = HyFD().discover(rel)
    from repro.baselines.partitions import Partition, column_codes, fd_error_g3

    for fd in res.fds:
        err = fd_error_g3(
            Partition.for_attributes(rel, fd.lhs), column_codes(rel, fd.rhs)
        )
        assert err == 0.0, str(fd)


def test_agrees_with_tane_on_minimal_exact_fds():
    """The hybrid route must land on the same minimal exact FD set as the
    lattice route at matched depth."""
    rel = exact_fd_relation(150, seed=3)
    hyfd = set(HyFD(max_lhs_size=2).discover(rel).fds)
    tane = set(Tane(max_error=0.0, max_lhs_size=2).discover(rel).fds)
    assert hyfd == tane


def test_minimality():
    res = HyFD().discover(exact_fd_relation())
    for fd in res.fds:
        for other in res.fds:
            if other != fd and other.rhs == fd.rhs:
                assert not set(other.lhs) < set(fd.lhs)


def test_stats_recorded():
    res = HyFD().discover(exact_fd_relation())
    assert res.rounds >= 1
    assert res.difference_sets > 0
    assert res.validations > 0
    assert res.seconds > 0


def test_single_row_relation():
    res = HyFD().discover(Relation.from_rows(["a", "b"], [(1, 2)]))
    assert res.fds == []


def test_time_limit():
    rng = np.random.default_rng(0)
    rows = [tuple(int(rng.integers(40)) for _ in range(14)) for _ in range(1500)]
    rel = Relation.from_rows([f"c{i}" for i in range(14)], rows)
    with pytest.raises(TimeBudgetExceeded):
        HyFD(max_lhs_size=5, time_limit=0.02).discover(rel)


def test_invalid_params():
    with pytest.raises(ValueError):
        HyFD(max_lhs_size=0)
