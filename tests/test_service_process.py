"""Process-executor job mode (JobManager + DiscoveryService).

``JobManager(executor="process")`` runs each job body in a supervised
child process: results come back by pipe, the job's cancel token is
relayed as a sentinel (then SIGTERM, then SIGKILL), and timeouts are
hard deadlines. The invariants these tests pin: jobs reach terminal
states, errors are typed, and **no worker process outlives its job**.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.dataset.relation import Relation
from repro.service import ServiceClient, start_in_thread
from repro.service.jobs import CANCELLED, DONE, FAILED, JobManager


def _no_orphans(timeout=5.0):
    """True once no repro worker children remain (reaped, not zombies)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = [
            p for p in multiprocessing.active_children()
            if p.name.startswith("repro-job-worker")
        ]
        if not alive:
            return True
        time.sleep(0.05)
    return False


# Process-mode job bodies must be picklable -> module level.
def _sleep_forever():
    time.sleep(60)
    return "never"


def _add(a, b):
    return a + b


def small_relation(n=200, p=5, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(10))
        rows.append(tuple([base, base % 3] + [int(rng.integers(4)) for _ in range(p - 2)]))
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


@pytest.fixture
def manager():
    m = JobManager(workers=2, default_timeout=30.0,
                   executor="process", process_grace=0.3)
    yield m
    m.shutdown(wait=False)
    assert _no_orphans()


def test_executor_mode_is_validated_and_reported():
    with pytest.raises(ValueError):
        JobManager(workers=1, executor="gpu")
    m = JobManager(workers=1, executor="process")
    try:
        assert m.stats()["executor"] == "process"
    finally:
        m.shutdown(wait=False)


def test_process_job_returns_result(manager):
    job = manager.submit(lambda: manager.run_in_worker(_add, (20, 22)))
    assert job.wait(timeout=15.0) == DONE
    assert job.result == 42


def test_process_job_cancel_kills_and_reaps_the_worker(manager):
    job = manager.submit(lambda: manager.run_in_worker(_sleep_forever))
    # Let the job actually start its worker process before cancelling.
    deadline = time.monotonic() + 10.0
    while job.state == "queued" and time.monotonic() < deadline:
        time.sleep(0.02)
    time.sleep(0.2)
    assert job.cancel()
    assert job.wait(timeout=10.0) == CANCELLED
    assert _no_orphans()


def test_process_job_timeout_is_a_hard_deadline(manager):
    job = manager.submit(
        lambda: manager.run_in_worker(_sleep_forever, timeout=0.5)
    )
    assert job.wait(timeout=15.0) == FAILED
    assert "TaskTimeoutError" in job.error
    assert _no_orphans()


def test_thread_mode_runs_inline():
    m = JobManager(workers=1, executor="thread")
    try:
        # No child processes involved; closures are fine.
        job = m.submit(lambda: m.run_in_worker(lambda x: x + 1, (1,)))
        assert job.wait(timeout=10.0) == DONE
        assert job.result == 2
    finally:
        m.shutdown(wait=False)


def test_discovery_over_http_on_the_process_executor():
    """End-to-end: a real discover round trip served by a worker process,
    then a clean shutdown with nothing left running."""
    relation = small_relation()
    with start_in_thread(workers=2, executor="process", job_timeout=60.0) as handle:
        client = ServiceClient(handle.base_url, timeout=60.0)
        client.wait_until_healthy()
        outcome = client.discover(relation)
        assert outcome.fds, "expected at least one FD"
        assert handle.service.jobs.stats()["executor"] == "process"
    assert _no_orphans()
