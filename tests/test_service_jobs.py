"""Tests for repro.service.jobs (bounded pool, lifecycle, timeout, cancel)."""

import threading
import time

import pytest

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobManager,
)


@pytest.fixture
def manager():
    m = JobManager(workers=2, default_timeout=30.0)
    yield m
    m.shutdown(wait=False)


def test_job_runs_to_done(manager):
    job = manager.submit(lambda: 41 + 1)
    assert job.wait(timeout=5.0) == DONE
    assert job.result == 42
    assert job.error is None
    payload = job.to_dict()
    assert payload["state"] == DONE and payload["result"] == 42


def test_job_failure_captures_error(manager):
    def boom():
        raise ValueError("bad input")

    job = manager.submit(boom)
    assert job.wait(timeout=5.0) == FAILED
    assert "ValueError: bad input" in job.error
    assert "result" not in job.to_dict()


def test_job_ids_are_unique(manager):
    ids = {manager.submit(lambda: None).id for _ in range(20)}
    assert len(ids) == 20


def test_per_job_timeout_reports_failed(manager):
    release = threading.Event()
    job = manager.submit(release.wait, timeout=0.05)
    try:
        assert job.wait(timeout=5.0) == FAILED
        assert "timed out" in job.error
    finally:
        release.set()  # let the stuck worker finish
    # The worker eventually returning must not resurrect the job.
    time.sleep(0.1)
    assert job.state == FAILED
    assert job.result is None


def test_cancel_queued_job():
    manager = JobManager(workers=1)
    try:
        gate = threading.Event()
        blocker = manager.submit(gate.wait)
        queued = manager.submit(lambda: "never")
        assert queued.state == QUEUED
        assert manager.cancel(queued.id)
        gate.set()
        assert queued.wait(timeout=5.0) == CANCELLED
        assert blocker.wait(timeout=5.0) == DONE
        assert queued.result is None
    finally:
        manager.shutdown(wait=False)


def test_cancel_running_job_discards_result(manager):
    started = threading.Event()
    release = threading.Event()

    def work():
        started.set()
        release.wait(5.0)
        return "secret"

    job = manager.submit(work)
    assert started.wait(5.0)
    assert job.state == RUNNING
    assert job.cancel()
    release.set()
    assert job.wait(timeout=5.0) == CANCELLED
    assert job.result is None


def test_cancel_unknown_job(manager):
    assert manager.cancel("job-nope") is False


def test_bounded_concurrency():
    manager = JobManager(workers=2)
    try:
        active = []
        peak = []
        lock = threading.Lock()

        def work():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.05)
            with lock:
                active.pop()

        jobs = [manager.submit(work) for _ in range(8)]
        for job in jobs:
            assert job.wait(timeout=10.0) == DONE
        assert max(peak) <= 2
    finally:
        manager.shutdown(wait=False)


def test_queue_depth_and_stats():
    manager = JobManager(workers=1)
    try:
        gate = threading.Event()
        running = threading.Event()
        manager.submit(lambda: (running.set(), gate.wait(5.0)))
        assert running.wait(5.0)
        queued = [manager.submit(lambda: None) for _ in range(3)]
        assert manager.queue_depth() == 3
        stats = manager.stats()
        assert stats["submitted"] == 4 and stats["workers"] == 1
        assert stats["queue_depth"] == 3 and stats["running"] == 1
        gate.set()
        for job in queued:
            assert job.wait(timeout=5.0) == DONE
        assert manager.queue_depth() == 0
    finally:
        manager.shutdown(wait=False)


def test_retention_prunes_finished_jobs():
    manager = JobManager(workers=2, max_retained=5)
    try:
        jobs = [manager.submit(lambda: None) for _ in range(12)]
        for job in jobs:
            job.wait(timeout=5.0)
        last = manager.submit(lambda: None)  # pruning happens at submit time
        assert last.wait(timeout=5.0) == DONE
        assert manager.stats()["retained"] <= 5
        assert manager.get(last.id) is not None
        assert manager.get(jobs[0].id) is None
    finally:
        manager.shutdown(wait=False)


def test_submit_after_shutdown_raises():
    manager = JobManager(workers=1)
    manager.shutdown(wait=False)
    with pytest.raises(RuntimeError):
        manager.submit(lambda: None)
