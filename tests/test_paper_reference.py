"""Tests for the encoded paper numbers and the ranking they imply."""

import pytest

from repro.experiments.paper_reference import (
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6_FDS,
    paper_mean_f1,
    paper_ranking,
)
from repro.experiments.runner import METHOD_ORDER
from repro.experiments.tables import NETWORK_ORDER, REAL_WORLD_ORDER


def test_tables_cover_all_datasets_and_methods():
    assert set(PAPER_TABLE4) == set(NETWORK_ORDER)
    assert set(PAPER_TABLE5) == set(NETWORK_ORDER)
    assert set(PAPER_TABLE6_FDS) == set(REAL_WORLD_ORDER)
    for per_method in PAPER_TABLE4.values():
        assert set(per_method) == set(METHOD_ORDER)


def test_f1_values_consistent_with_p_r():
    """The printed F1s match 2PR/(P+R) — except the paper's own Child/FDX
    row, which prints 0.667 for P=1.0, R=0.45 (harmonic mean 0.621); the
    transcription keeps the paper's value verbatim."""
    for dataset, per_method in PAPER_TABLE4.items():
        for method, entry in per_method.items():
            if entry is None or (dataset, method) == ("child", "FDX"):
                continue
            p, r, f1 = entry
            expected = 0.0 if p + r == 0 else 2 * p * r / (p + r)
            assert f1 == pytest.approx(expected, abs=0.002), (dataset, method)


def test_paper_headline_fdx_wins():
    """The paper's claim encoded: FDX has the best mean F1 by a wide margin."""
    ranking = paper_ranking()
    assert ranking[0][0] == "FDX"
    fdx = paper_mean_f1("FDX")
    runner_up = ranking[1][1]
    assert fdx > 1.4 * runner_up  # the ~2x average improvement claim


def test_paper_dnfs_where_expected():
    assert PAPER_TABLE4["alarm"]["PYRO"] is None
    assert PAPER_TABLE4["alarm"]["RFI(1.0)"] is None
    assert PAPER_TABLE6_FDS["nypd"]["RFI(1.0)"] is None


def test_paper_parsimony_profile():
    """Paper Table 6: FDX's FD counts never exceed the exhaustive methods'
    and stay below the attribute count (CORDS occasionally reports fewer —
    e.g. 7 on NYPD — because its chi-squared filter can reject pairs)."""
    attrs = {"australian": 15, "hospital": 17, "mammographic": 6,
             "nypd": 17, "thoracic": 17, "tic-tac-toe": 10}
    for name, per_method in PAPER_TABLE6_FDS.items():
        fdx = per_method["FDX"]
        assert fdx <= attrs[name]
        for method in ("PYRO", "TANE"):
            count = per_method[method]
            if count is not None:
                assert fdx <= count, (name, method)
