"""Tests for repro.prep.reporting (one-shot profiling reports)."""

import numpy as np
import pytest

from repro.dataset.relation import Relation
from repro.prep.reporting import ProfilingReport, build_profiling_report


@pytest.fixture(scope="module")
def report():
    rng = np.random.default_rng(0)
    rows = []
    for i in range(400):
        z = int(rng.integers(10))
        rows.append((i, z, f"city_{z % 5}", int(rng.integers(4))))
    rel = Relation.from_rows(["id", "zip", "city", "free"], rows)
    return build_profiling_report(rel, n_resamples=3)


def test_all_sections_populated(report):
    assert report.profile.n_rows == 400
    assert report.stability.fds
    assert report.keys.possible_keys
    assert report.denial_constraints.constraints


def test_key_and_fd_findings(report):
    assert frozenset({"id"}) in report.keys.certain_keys
    assert any(fd.rhs == "city" and "zip" in fd.lhs for fd in report.stability.fds)


def test_cleaning_outlook_partition(report):
    assert "city" in report.cleanable
    assert "free" in report.hard_to_clean
    assert not set(report.cleanable) & set(report.hard_to_clean)


def test_markdown_rendering(report):
    md = report.to_markdown(title="Test profile")
    assert md.startswith("# Test profile")
    for heading in ("## Column statistics", "## Functional dependencies",
                    "## Keys", "## Denial constraints", "## Cleaning outlook"):
        assert heading in md
    assert "stability" in md
    assert "zip" in md


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main
    from repro.dataset.io import write_csv

    rng = np.random.default_rng(1)
    rows = [(int(z), f"c{int(z) % 3}") for z in rng.integers(6, size=150)]
    rel = Relation.from_rows(["zip", "city"], rows)
    path = tmp_path / "data.csv"
    write_csv(rel, path)
    out_path = tmp_path / "report.md"
    assert main(["report", str(path), "--output", str(out_path),
                 "--resamples", "2"]) == 0
    text = out_path.read_text()
    assert "## Functional dependencies" in text
