"""Evidence-ledger tests: build, lookup, rendering, round-trips, parity.

Covers the :mod:`repro.obs.explain` unit surface plus its integration
into ``FDX.discover`` diagnostics: every emitted FD must carry a
retrievable evidence record, near-misses must be margin-ranked and
capped, and the whole ledger must survive ``FDXResult`` serialization
and stay byte-identical across the serial/thread/process backends.
"""

import json

import numpy as np
import pytest

from repro.core.fdx import FDX, FDXResult
from repro.dataset.relation import Relation
from repro.obs.explain import (
    DEFAULT_NEAR_MISS_CAP,
    EvidenceLedger,
    annotate_evidence,
    build_evidence,
    evidence_for_fd,
    render_evidence_table,
)


def toy_evidence(sparsity=0.1, near_miss_cap=DEFAULT_NEAR_MISS_CAP):
    """Hand-built 3x3 system: one emitted edge, one near-miss, one zero."""
    B = np.array([
        [0.0, 0.5, 0.06],   # a->b emitted (0.5 > 0.1); a->c near-miss
        [0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0],
    ])
    precision = np.array([
        [2.0, -0.8, -0.1],
        [-0.8, 2.0, 0.0],
        [-0.1, 0.0, 2.0],
    ])
    return build_evidence(
        autoregression=B,
        order=np.arange(3),
        names=["a", "b", "c"],
        precision=precision,
        sparsity=sparsity,
        n_pair_samples=120,
        n_rows=40,
        lambda_info={"mode": "fixed", "selected": 0.02},
        near_miss_cap=near_miss_cap,
    )


def discovery_relation(n=300):
    rows = [(f"z{i % 7}", f"c{i % 7}", f"s{i % 2}") for i in range(n)]
    return Relation.from_rows(["zip", "city", "state"], rows)


class TestBuildEvidence:
    def test_emitted_record_carries_full_edge_evidence(self):
        evidence = toy_evidence()
        assert [r["fd"] for r in evidence["records"]] == ["a->b"]
        record = evidence["records"][0]
        assert record["lhs"] == ["a"] and record["rhs"] == "b"
        assert record["emitted"] is True
        edge = record["edges"][0]
        assert edge["weight"] == pytest.approx(0.5)
        assert edge["precision"] == pytest.approx(-0.8)
        # partial correlation = -Theta_ij / sqrt(Theta_ii * Theta_jj)
        assert edge["partial_correlation"] == pytest.approx(0.8 / 2.0)
        assert record["margin"] == pytest.approx(0.5 - 0.1)

    def test_near_miss_sits_between_floor_and_threshold(self):
        evidence = toy_evidence()
        assert [r["fd"] for r in evidence["near_misses"]] == ["a->c"]
        miss = evidence["near_misses"][0]
        assert miss["margin"] == pytest.approx(0.1 - 0.06)
        assert evidence["suppressed_total"] == 1

    def test_near_misses_ranked_by_margin_and_capped(self):
        p = 8
        B = np.zeros((p, p))
        # Row 0 determines columns 1..p-1 with weights strictly below the
        # 0.5 threshold, each a different distance away.
        for j in range(1, p):
            B[0, j] = 0.5 - 0.05 * j
        evidence = build_evidence(
            autoregression=B,
            order=np.arange(p),
            names=[f"a{i}" for i in range(p)],
            precision=np.eye(p),
            sparsity=0.5,
            n_pair_samples=10,
            near_miss_cap=3,
        )
        assert evidence["records"] == []
        assert evidence["suppressed_total"] == p - 1
        assert len(evidence["near_misses"]) == 3
        margins = [m["margin"] for m in evidence["near_misses"]]
        assert margins == sorted(margins)
        assert margins[0] == pytest.approx(0.05)

    def test_structural_zeros_are_not_near_misses(self):
        B = np.zeros((2, 2))
        B[0, 1] = 1e-12  # below NUMERICAL_ZERO
        evidence = build_evidence(
            autoregression=B,
            order=np.arange(2),
            names=["a", "b"],
            precision=np.eye(2),
            sparsity=0.05,
            n_pair_samples=4,
        )
        assert evidence["records"] == []
        assert evidence["near_misses"] == []
        assert evidence["suppressed_total"] == 0

    def test_ledger_is_json_pure(self):
        evidence = toy_evidence()
        rebuilt = json.loads(json.dumps(evidence))
        assert rebuilt == evidence

    def test_fallback_stage_tracks_chain_tail(self):
        chain = [{"stage": "configured"}, {"stage": "neighborhood"}]
        evidence = build_evidence(
            autoregression=np.zeros((1, 1)),
            order=np.arange(1),
            names=["a"],
            precision=np.eye(1),
            sparsity=0.05,
            n_pair_samples=0,
            fallback_chain=chain,
        )
        assert evidence["fallback_stage"] == "neighborhood"


class TestLookupAndRendering:
    def test_lookup_is_lhs_order_insensitive(self):
        evidence = {"records": [{"fd": "a,b->c", "rhs": "c"}]}
        assert evidence_for_fd(evidence, "b, a ->c") == evidence["records"][0]
        assert evidence_for_fd(evidence, "a->c") is None

    def test_bare_attribute_matches_its_determining_record(self):
        evidence = toy_evidence()
        assert evidence_for_fd(evidence, "b")["fd"] == "a->b"
        assert evidence_for_fd(evidence, "nope") is None

    def test_annotate_adds_streaks_and_drift(self):
        annotated = annotate_evidence(
            toy_evidence(), streaks={"a->b": 4}, drift_score=0.25
        )
        assert annotated["records"][0]["stability_streak"] == 4
        assert annotated["drift_score"] == pytest.approx(0.25)
        # The original ledger is untouched (copy semantics).
        assert "stability_streak" not in toy_evidence()["records"][0]

    def test_annotate_maps_nonfinite_drift_to_none(self):
        assert annotate_evidence(toy_evidence(), drift_score=float("nan"))[
            "drift_score"
        ] is None

    def test_render_table_lists_records_and_near_misses(self):
        lines = render_evidence_table(toy_evidence())
        assert lines[0].startswith("evidence: threshold=0.1 lambda=0.02")
        assert any("a->b" in line and "margin=" in line for line in lines)
        assert any("near-misses (1 of 1" in line for line in lines)

    def test_ledger_object_round_trips(self):
        ledger = EvidenceLedger(toy_evidence())
        rebuilt = EvidenceLedger.from_dict(
            json.loads(json.dumps(ledger.to_dict()))
        )
        assert rebuilt.to_dict() == ledger.to_dict()
        assert rebuilt.for_fd("a->b")["fd"] == "a->b"
        assert [m["fd"] for m in rebuilt.near_misses] == ["a->c"]
        with pytest.raises(ValueError):
            EvidenceLedger.from_dict(None)


class TestDiscoveryIntegration:
    def test_every_emitted_fd_has_a_retrievable_record(self):
        result = FDX().discover(discovery_relation())
        evidence = result.diagnostics["evidence"]
        assert result.fds, "fixture must emit at least one FD"
        for fd in result.fds:
            record = evidence_for_fd(evidence, str(fd))
            assert record is not None, f"no evidence for {fd}"
            assert record["margin"] > 0
            assert record["edges"]
        assert evidence["lambda"]["mode"] == "fixed"
        assert evidence["fallback_stage"] == "configured"
        assert evidence["n_pair_samples"] == result.n_pair_samples

    def test_evidence_can_be_disabled(self):
        result = FDX(evidence=False).discover(discovery_relation())
        assert "evidence" not in result.diagnostics
        # Solver telemetry is unconditional: it costs nothing extra.
        assert result.diagnostics["solver_health"]["runs"]

    def test_evidence_round_trips_through_fdxresult(self):
        result = FDX().discover(discovery_relation())
        rebuilt = FDXResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.diagnostics["evidence"] == result.diagnostics["evidence"]
        assert (
            rebuilt.diagnostics["solver_health"]
            == result.diagnostics["solver_health"]
        )

    def test_solver_health_records_the_final_solve(self):
        result = FDX(lam=0.02).discover(discovery_relation())
        health = result.diagnostics["solver_health"]
        runs = health["runs"]
        assert len(runs) == 1
        run = runs[0]
        assert run["stage"] == "configured"
        assert run["estimator"] == "glasso"
        assert run["lam"] == pytest.approx(0.02)
        assert run["converged"] is True
        assert run["condition_number"] >= 1.0
        assert health["lambda"]["mode"] == "fixed"
        # Determinism contract: no wall-clock fields in solver runs.
        assert not any("seconds" in key or "time" in key for key in run)

    def test_tiny_relation_gets_an_empty_ledger(self):
        rel = Relation.from_rows(["only"], [("x",), ("y",)])
        result = FDX().discover(rel)
        evidence = result.diagnostics["evidence"]
        assert evidence["records"] == []
        assert result.diagnostics["solver_health"]["runs"] == []


@pytest.mark.parametrize("backend,workers", [("thread", 2), ("process", 2)])
def test_evidence_identical_across_backends(backend, workers):
    """Emit/suppress decisions (and margins) never depend on the backend."""
    relation = discovery_relation(n=600)
    serial = FDX(seed=5).discover(relation)
    parallel = FDX(
        seed=5, n_jobs=workers, parallel_backend=backend, parallel_min_rows=0
    ).discover(relation)
    assert parallel.diagnostics["evidence"] == serial.diagnostics["evidence"]
    assert (
        parallel.diagnostics["solver_health"]
        == serial.diagnostics["solver_health"]
    )
