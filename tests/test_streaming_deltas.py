"""Tests for repro.streaming.deltas (versioned FD changelog + streaks)."""

import pytest

from repro.core.fd import FD
from repro.streaming import ChangeLog, DeltaRecord, fd_key


AB = FD(["a"], "b")
AC = FD(["a"], "c")
BC = FD(["b"], "c")


def test_fd_key_is_canonical():
    assert fd_key(AB) == "a->b"
    assert fd_key(FD(["a", "b"], "c")) == "a,b->c"


def test_first_record_is_all_added():
    log = ChangeLog()
    record = log.record([AB, AC], n_rows_seen=100)
    assert record.version == 1
    assert set(record.added) == {AB, AC}
    assert record.removed == [] and record.retained == []
    assert record.n_rows_seen == 100
    assert log.version == 1


def test_diff_classifies_added_removed_retained():
    log = ChangeLog()
    log.record([AB, AC])
    record = log.record([AB, BC])
    assert record.added == [BC]
    assert record.removed == [AC]
    assert record.retained == [AB]
    assert set(map(fd_key, log.current_fds)) == {"a->b", "b->c"}


def test_streaks_advance_and_reset():
    log = ChangeLog()
    log.record([AB])
    log.record([AB, AC])
    record = log.record([AB, AC])
    assert log.streak(AB) == 3
    assert log.streak(AC) == 2
    assert record.streaks["a->b"] == 3
    # A removed FD reports the streak it died with, then resets to 0.
    record = log.record([AC])
    assert record.streaks["a->b"] == 3
    assert log.streak(AB) == 0
    log.record([AB, AC])
    assert log.streak(AB) == 1


def test_all_retained_still_bumps_version():
    log = ChangeLog()
    log.record([AB])
    record = log.record([AB])
    assert record.version == 2
    assert record.added == [] and record.removed == []
    assert record.retained == [AB]


def test_since_returns_strictly_newer_records():
    log = ChangeLog()
    for _ in range(4):
        log.record([AB])
    assert [r.version for r in log.since(0)] == [1, 2, 3, 4]
    assert [r.version for r in log.since(2)] == [3, 4]
    assert log.since(4) == []


def test_bounded_retention_keeps_versions_monotone():
    log = ChangeLog(max_records=3)
    for _ in range(10):
        log.record([AB])
    assert log.version == 10
    assert log.earliest_version == 8
    # A stale cursor sees the gap through earliest_version.
    assert [r.version for r in log.since(0)] == [8, 9, 10]


def test_max_records_validation():
    with pytest.raises(ValueError):
        ChangeLog(max_records=0)


def test_round_trip_preserves_state():
    log = ChangeLog(max_records=16)
    log.record([AB, AC], n_rows_seen=50)
    log.record([AB, BC], n_rows_seen=120)
    restored = ChangeLog.from_dict(log.to_dict())
    assert restored.version == log.version
    assert restored.earliest_version == log.earliest_version
    assert set(map(fd_key, restored.current_fds)) == set(
        map(fd_key, log.current_fds)
    )
    assert restored.streak(AB) == log.streak(AB)
    # The diff machinery keeps working after the restore.
    record = restored.record([AB])
    assert record.version == 3
    assert record.removed == [BC]
    assert restored.streak(AB) == 3


def test_delta_record_round_trip():
    record = DeltaRecord(
        version=7, added=[AB], removed=[AC], retained=[BC],
        streaks={"a->b": 1, "b->c": 4, "a->c": 2}, n_rows_seen=900,
    )
    restored = DeltaRecord.from_dict(record.to_dict())
    assert restored.version == 7
    assert restored.added == [AB] and restored.removed == [AC]
    assert restored.retained == [BC]
    assert restored.streaks == record.streaks
    assert restored.n_rows_seen == 900
