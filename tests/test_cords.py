"""Tests for repro.baselines.cords."""

import numpy as np
import pytest

from repro.baselines.cords import Cords
from repro.core.fd import FD
from repro.dataset.relation import Relation


def soft_fd_relation(n=500, seed=0):
    """a -> b softly (95%); c independent; k is a key."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        a = int(rng.integers(8))
        b = a % 4 if rng.random() < 0.95 else int(rng.integers(4))
        rows.append((i, a, b, int(rng.integers(6))))
    return Relation.from_rows(["k", "a", "b", "c"], rows)


def test_detects_soft_fd():
    res = Cords(epsilon3=0.1).discover(soft_fd_relation())
    assert FD(["a"], "b") in res.fds


def test_keys_detected_and_excluded_as_determinants():
    res = Cords(epsilon3=0.1).discover(soft_fd_relation())
    assert "k" in res.soft_keys
    assert all("k" not in fd.lhs for fd in res.fds)


def test_independent_pair_not_reported():
    res = Cords(epsilon3=0.05).discover(soft_fd_relation())
    assert FD(["c"], "b") not in res.fds
    assert FD(["b"], "c") not in res.fds


def test_correlated_pairs_found_by_chi_squared():
    res = Cords().discover(soft_fd_relation())
    assert ("a", "b") in res.correlated_pairs


def test_only_single_attribute_determinants():
    res = Cords().discover(soft_fd_relation())
    assert all(fd.arity == 1 for fd in res.fds)


def test_strengths_at_least_threshold():
    res = Cords(epsilon3=0.1).discover(soft_fd_relation())
    assert all(s >= 0.9 for s in res.strengths.values())


def test_sampling_bounds_cost():
    big = soft_fd_relation(5000)
    res = Cords(sample_rows=200).discover(big)
    assert res.seconds < 5.0
    assert FD(["a"], "b") in res.fds


def test_max_categories_pools_large_domains():
    rng = np.random.default_rng(1)
    rows = [(int(rng.integers(500)), int(rng.integers(500))) for _ in range(400)]
    rel = Relation.from_rows(["x", "y"], rows)
    res = Cords(max_categories=10).discover(rel)  # must not blow up
    assert isinstance(res.fds, list)


def test_empty_relation():
    rel = Relation.from_rows(["x", "y"], [])
    res = Cords().discover(rel)
    assert res.fds == []
