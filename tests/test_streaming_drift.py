"""Tests for repro.streaming.drift (covariance-shift detection)."""

import numpy as np
import pytest

from repro.streaming import DriftDetector


def outer_from_corr(rho, n=200, p=3, seed=0):
    """Second moment of n samples with equicorrelation rho off-diagonal."""
    rng = np.random.default_rng(seed)
    cov = np.full((p, p), rho, dtype=float)
    np.fill_diagonal(cov, 1.0)
    X = rng.multivariate_normal(np.zeros(p), cov, size=n)
    X -= X.mean(axis=0)
    return X.T @ X, float(n)


def feed(detector, rho, batches=8, seed=0):
    for i in range(batches):
        outer, n = outer_from_corr(rho, seed=seed + i)
        detector.update(outer, n)


def baseline(rho, n=5000, seed=99):
    return outer_from_corr(rho, n=n, seed=seed)


def test_not_ready_before_min_samples():
    detector = DriftDetector(min_samples=64)
    status = detector.status(None, 0.0)
    assert status.ready is False and status.alert is False and status.score == 0.0
    outer, n = outer_from_corr(0.5, n=10)
    detector.update(outer, n)
    status = detector.status(*baseline(0.5))
    assert status.ready is False  # window has only 10 samples


def test_stationary_stream_scores_low():
    detector = DriftDetector(threshold=0.15)
    feed(detector, rho=0.6)
    status = detector.status(*baseline(0.6))
    assert status.ready is True
    assert status.score < 0.15
    assert status.alert is False


def test_correlation_shift_raises_score_and_alerts():
    detector = DriftDetector(threshold=0.15)
    feed(detector, rho=-0.4)
    status = detector.status(*baseline(0.7))
    assert status.ready is True
    assert status.score > 0.5
    assert status.alert is True
    assert detector.alerts_total == 1
    # Re-polling the same alerting state does not double-count the onset.
    detector.status(*baseline(0.7))
    assert detector.alerts_total == 1


def test_window_slides_past_old_regime():
    detector = DriftDetector(window_batches=4, threshold=0.15)
    feed(detector, rho=-0.4, batches=4)
    # Regime change: enough new batches displace the old window entirely.
    feed(detector, rho=0.7, batches=4, seed=50)
    status = detector.status(*baseline(0.7))
    assert status.alert is False


def test_schema_change_restarts_window():
    detector = DriftDetector()
    detector.update(np.eye(3) * 100, 100.0)
    detector.update(np.eye(5) * 100, 100.0)  # new shape: window restarts
    status = detector.status(np.eye(5) * 5000, 5000.0)
    assert status.window_batches == 1


def test_validation():
    with pytest.raises(ValueError):
        DriftDetector(window_batches=0)
    with pytest.raises(ValueError):
        DriftDetector(threshold=0.0)


def test_round_trip_preserves_window_and_counters():
    detector = DriftDetector(window_batches=4, threshold=0.2, min_samples=32)
    feed(detector, rho=-0.4, batches=4)
    detector.status(*baseline(0.7))  # trips the alert counter
    restored = DriftDetector.from_dict(detector.to_dict())
    assert restored.window_batches == 4
    assert restored.threshold == 0.2
    assert restored.alerts_total == detector.alerts_total
    original = detector.status(*baseline(0.7))
    revived = restored.status(*baseline(0.7))
    assert revived.score == pytest.approx(original.score)
    assert revived.alert == original.alert
