"""Tests for repro.linalg.ordering."""

import numpy as np
import pytest

from repro.linalg.ordering import (
    ORDERING_METHODS,
    compute_order,
    minimum_degree_order,
    natural_order,
    residual_variance_order,
    support_graph,
)


def chain_theta(p=6):
    """Tridiagonal precision: a chain graph 0-1-2-...-(p-1)."""
    theta = 2.0 * np.eye(p)
    for i in range(p - 1):
        theta[i, i + 1] = theta[i + 1, i] = -0.8
    return theta


def test_support_graph_edges():
    g = support_graph(chain_theta(4))
    assert set(g.edges) == {(0, 1), (1, 2), (2, 3)}


def test_support_graph_ignores_tiny_entries():
    theta = np.eye(3)
    theta[0, 1] = theta[1, 0] = 1e-12
    g = support_graph(theta)
    assert not g.edges


def test_natural_order_is_identity():
    assert natural_order(np.eye(5)).tolist() == [0, 1, 2, 3, 4]


@pytest.mark.parametrize("method", sorted(ORDERING_METHODS))
def test_all_methods_return_permutations(method):
    theta = chain_theta(8)
    order = compute_order(theta, method)
    assert sorted(order.tolist()) == list(range(8))


@pytest.mark.parametrize("method", sorted(ORDERING_METHODS))
def test_all_methods_handle_dense_matrix(method):
    rng = np.random.default_rng(0)
    A = rng.normal(size=(6, 6))
    theta = A @ A.T + 6 * np.eye(6)
    order = compute_order(theta, method)
    assert sorted(order.tolist()) == list(range(6))


@pytest.mark.parametrize("method", sorted(ORDERING_METHODS))
def test_all_methods_handle_diagonal_matrix(method):
    order = compute_order(np.diag([1.0, 2.0, 3.0]), method)
    assert sorted(order.tolist()) == [0, 1, 2]


def test_compute_order_unknown_method():
    with pytest.raises(ValueError, match="unknown ordering"):
        compute_order(np.eye(3), "bogus")


def test_minimum_degree_prefers_low_degree_first():
    # Star graph: center 0 has degree 4, leaves have degree 1. The hub is
    # only eliminated once enough leaves are gone for its degree to drop.
    p = 5
    theta = 2.0 * np.eye(p)
    for leaf in range(1, p):
        theta[0, leaf] = theta[leaf, 0] = -0.5
    order = minimum_degree_order(theta).tolist()
    assert order.index(0) >= 3


def test_residual_variance_order_recovers_sem_topology():
    """For a linear SEM with equal noise, sinks are ordered last."""
    p = 4
    B = np.zeros((p, p))
    B[0, 1] = 0.9
    B[1, 2] = 0.9
    B[2, 3] = 0.9
    omega_inv = np.eye(p)
    I = np.eye(p)
    theta = (I - B) @ omega_inv @ (I - B).T
    order = residual_variance_order(theta).tolist()
    # Positions must respect the chain 0 -> 1 -> 2 -> 3.
    assert order.index(0) < order.index(1) < order.index(2) < order.index(3)
