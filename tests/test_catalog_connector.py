"""Tests for catalog connectors (SQLite and CSV-directory sources)."""

import sqlite3

import pytest

from repro.catalog import (
    CsvDirectoryConnector,
    SqliteConnector,
    connector_from_spec,
    open_connector,
)
from repro.dataset.relation import MISSING, concat_rows
from repro.errors import CatalogError


@pytest.fixture
def sqlite_db(tmp_path):
    path = tmp_path / "cat.sqlite"
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE beta (x INT, label TEXT)")
    conn.execute("CREATE TABLE alpha (id INTEGER, amount REAL, note TEXT)")
    conn.executemany(
        "INSERT INTO alpha VALUES (?,?,?)",
        [(i, i / 2.0, f"n{i % 3}") for i in range(25)],
    )
    conn.executemany(
        "INSERT INTO beta VALUES (?,?)",
        [(i, None if i % 5 == 0 else f"l{i % 4}") for i in range(10)],
    )
    conn.commit()
    conn.close()
    return str(path)


@pytest.fixture
def csv_dir(tmp_path):
    d = tmp_path / "csvs"
    d.mkdir()
    (d / "zed.csv").write_text("a,b\n1,x\n2,y\n3,x\n")
    (d / "able.csv").write_text("p,q\n" + "".join(f"{i},{i % 4}\n" for i in range(30)))
    (d / "ignored.txt").write_text("not a table")
    return str(d)


def test_sqlite_enumeration_sorted(sqlite_db):
    c = SqliteConnector(sqlite_db)
    assert c.table_names() == ["alpha", "beta"]
    assert c.describe().startswith("sqlite:")


def test_sqlite_table_info(sqlite_db):
    info = SqliteConnector(sqlite_db).table_info("alpha")
    assert info.n_rows == 25
    assert info.columns == (
        ("id", "numeric"), ("amount", "numeric"), ("note", "categorical")
    )
    assert info.to_dict()["columns"][0] == {"name": "id", "dtype": "numeric"}


def test_sqlite_batches_and_read_table(sqlite_db):
    c = SqliteConnector(sqlite_db)
    batches = list(c.iter_batches("alpha", batch_size=10))
    assert [b.n_rows for b in batches] == [10, 10, 5]
    whole = c.read_table("alpha")
    assert whole == concat_rows(batches)
    assert whole.column("amount")[3] == 1.5
    limited = c.read_table("alpha", limit=12)
    assert limited.n_rows == 12


def test_sqlite_nulls_become_missing(sqlite_db):
    rel = SqliteConnector(sqlite_db).read_table("beta")
    assert rel.column("label")[0] is MISSING
    assert rel.column("label")[1] == "l1"


def test_sqlite_unknown_table(sqlite_db):
    with pytest.raises(CatalogError, match="no such table"):
        SqliteConnector(sqlite_db).table_info("gamma")


def test_sqlite_missing_file(tmp_path):
    with pytest.raises(CatalogError, match="no such SQLite database"):
        SqliteConnector(tmp_path / "nope.db")


def test_csv_dir_enumeration(csv_dir):
    c = CsvDirectoryConnector(csv_dir)
    assert c.table_names() == ["able", "zed"]  # .txt file ignored


def test_csv_dir_info_and_batches(csv_dir):
    c = CsvDirectoryConnector(csv_dir)
    info = c.table_info("able")
    assert info.n_rows == 30
    assert dict(info.columns)["p"] == "numeric"
    batches = list(c.iter_batches("able", batch_size=12))
    assert [b.n_rows for b in batches] == [12, 12, 6]
    assert c.read_table("zed").n_rows == 3


def test_csv_dir_unknown_table(csv_dir):
    with pytest.raises(CatalogError, match="no such table"):
        CsvDirectoryConnector(csv_dir).table_info("missing")


def test_open_connector_dispatch(sqlite_db, csv_dir):
    assert isinstance(open_connector(input_path=sqlite_db), SqliteConnector)
    assert isinstance(open_connector(input_dir=csv_dir), CsvDirectoryConnector)
    with pytest.raises(CatalogError, match="exactly one"):
        open_connector()
    with pytest.raises(CatalogError, match="exactly one"):
        open_connector(input_path=sqlite_db, input_dir=csv_dir)


def test_spec_round_trip(sqlite_db, csv_dir):
    for original in (SqliteConnector(sqlite_db), CsvDirectoryConnector(csv_dir)):
        rebuilt = connector_from_spec(original.spec())
        assert type(rebuilt) is type(original)
        assert rebuilt.table_names() == original.table_names()
        first = original.table_names()[0]
        assert rebuilt.read_table(first) == original.read_table(first)


def test_connector_from_spec_rejects_garbage():
    with pytest.raises(CatalogError, match="unknown connector kind"):
        connector_from_spec({"kind": "oracle", "path": "x"})
    with pytest.raises(CatalogError, match="'path'"):
        connector_from_spec({"kind": "sqlite"})
    with pytest.raises(CatalogError, match="must be a dict"):
        connector_from_spec("sqlite:/x")
