"""Tests for repro.baselines.partitions."""

import numpy as np
import pytest

from repro.baselines.partitions import (
    Partition,
    column_codes,
    fd_error_g3,
    fd_holds,
)
from repro.dataset.relation import MISSING, Relation


def rel():
    return Relation.from_rows(
        ["x", "y"],
        [("a", 1), ("a", 1), ("a", 2), ("b", 3), ("b", 3), ("c", 4)],
    )


def test_column_codes_missing_unique():
    r = Relation.from_rows(["x"], [(MISSING,), (MISSING,), ("a",)])
    codes = column_codes(r, "x")
    assert codes[0] != codes[1]  # NULL != NULL
    assert codes[2] not in (codes[0], codes[1])


def test_from_codes_strips_singletons():
    p = Partition.from_codes(np.array([0, 0, 1, 2, 2, 3]))
    assert p.n_classes == 2
    assert p.size == 4


def test_for_attributes_single():
    p = Partition.for_attributes(rel(), ["x"])
    assert p.n_classes == 2  # {a,a,a} and {b,b}; c is a singleton
    assert p.size == 5


def test_for_attributes_joint():
    p = Partition.for_attributes(rel(), ["x", "y"])
    # (a,1) twice and (b,3) twice survive stripping.
    assert p.n_classes == 2
    assert p.size == 4


def test_for_attributes_empty_rejected():
    with pytest.raises(ValueError):
        Partition.for_attributes(rel(), [])


def test_multiply_matches_joint():
    r = rel()
    px = Partition.for_attributes(r, ["x"])
    py = Partition.for_attributes(r, ["y"])
    assert px.multiply(py).classes == Partition.for_attributes(r, ["x", "y"]).classes


def test_multiply_size_mismatch():
    p1 = Partition.from_codes(np.array([0, 0]))
    p2 = Partition.from_codes(np.array([0, 0, 1]))
    with pytest.raises(ValueError):
        p1.multiply(p2)


def test_key_error():
    p = Partition.from_codes(np.array([0, 0, 1, 2]))
    assert p.key_error == pytest.approx(1 / 4)  # delete one row to be a key


def test_refines_true_for_fd():
    r = Relation.from_rows(["x", "y"], [(i % 4, (i % 4) % 2) for i in range(20)])
    px = Partition.for_attributes(r, ["x"])
    py = Partition.for_attributes(r, ["y"])
    assert px.refines(py)
    assert not py.refines(px)


def test_fd_error_g3_exact_fd_is_zero():
    r = Relation.from_rows(["x", "y"], [(i % 4, (i % 4) * 10) for i in range(40)])
    p = Partition.for_attributes(r, ["x"])
    assert fd_error_g3(p, column_codes(r, "y")) == 0.0
    assert fd_holds(p, column_codes(r, "y"))


def test_fd_error_g3_counts_minority_rows():
    r = rel()
    p = Partition.for_attributes(r, ["x"])
    # Class {a,a,a}: y = 1,1,2 -> one removal. Class {b,b}: consistent.
    assert fd_error_g3(p, column_codes(r, "y")) == pytest.approx(1 / 6)
    assert not fd_holds(p, column_codes(r, "y"))
    assert fd_holds(p, column_codes(r, "y"), max_error=0.2)


def test_fd_error_empty_partition():
    p = Partition(classes=(), n_rows=0)
    assert fd_error_g3(p, np.array([], dtype=np.int64)) == 0.0


def test_g1_counts_violating_pairs():
    from repro.baselines.partitions import fd_error_g1

    r = rel()  # class {a,a,a}: y = 1,1,2 -> 4 ordered violating pairs
    p = Partition.for_attributes(r, ["x"])
    assert fd_error_g1(p, column_codes(r, "y")) == pytest.approx(4 / 36)


def test_g2_counts_involved_tuples():
    from repro.baselines.partitions import fd_error_g2

    r = rel()  # the three 'a' rows are all involved; 'b' rows are clean
    p = Partition.for_attributes(r, ["x"])
    assert fd_error_g2(p, column_codes(r, "y")) == pytest.approx(3 / 6)


def test_error_measures_ordering_g3_le_g2():
    """Classic relationship: g3 <= g2 (deleting the minority rows is never
    more than the tuples involved in violations)."""
    from repro.baselines.partitions import fd_error_g2

    rng = np.random.default_rng(0)
    r = Relation.from_rows(
        ["x", "y"],
        [(int(rng.integers(4)), int(rng.integers(3))) for _ in range(60)],
    )
    p = Partition.for_attributes(r, ["x"])
    codes = column_codes(r, "y")
    assert fd_error_g3(p, codes) <= fd_error_g2(p, codes) + 1e-12


def test_g1_g2_zero_for_exact_fd():
    from repro.baselines.partitions import fd_error_g1, fd_error_g2

    r = Relation.from_rows(["x", "y"], [(i % 4, (i % 4) * 2) for i in range(40)])
    p = Partition.for_attributes(r, ["x"])
    codes = column_codes(r, "y")
    assert fd_error_g1(p, codes) == 0.0
    assert fd_error_g2(p, codes) == 0.0
