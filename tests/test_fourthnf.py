"""Tests for repro.normalize.fourthnf (instance-driven 4NF)."""

import numpy as np
import pytest

from repro.dataset.relation import Relation
from repro.normalize.fourthnf import (
    find_violating_mvd,
    fourth_nf_decompose,
    join_fragments,
)


def course_relation():
    """course ->> book | teacher: the classic 4NF violation."""
    rows = []
    catalog = {
        "db": (["r", "g"], ["ann", "bob"]),
        "ml": (["b"], ["carol", "dan"]),
    }
    for course, (books, teachers) in catalog.items():
        for b in books:
            for t in teachers:
                rows.append((course, b, t))
    return Relation.from_rows(["course", "book", "teacher"], rows)


def keyed_relation(n=60, seed=0):
    rng = np.random.default_rng(seed)
    rows = [(i, int(rng.integers(5)), int(rng.integers(4))) for i in range(n)]
    return Relation.from_rows(["id", "a", "b"], rows)


def test_violating_mvd_found():
    violation = find_violating_mvd(course_relation())
    assert violation is not None
    det, dep = violation
    assert det == ["course"]
    assert dep[0] in ("book", "teacher")


def test_no_violation_in_keyed_relation():
    assert find_violating_mvd(keyed_relation()) is None


def test_decomposition_splits_cross_product():
    result = fourth_nf_decompose(course_relation())
    assert len(result.fragments) == 2
    assert frozenset({"course", "book"}) in result.fragments
    assert frozenset({"course", "teacher"}) in result.fragments
    assert len(result.splits) == 1


def test_decomposition_is_lossless():
    rel = course_relation()
    result = fourth_nf_decompose(rel)
    joined = join_fragments(rel, result.fragments)
    distinct_rows = len({tuple(map(repr, r)) for r in rel.rows()})
    assert joined == distinct_rows


def test_keyed_relation_untouched():
    rel = keyed_relation()
    result = fourth_nf_decompose(rel)
    assert result.fragments == [frozenset({"id", "a", "b"})]
    assert result.splits == []


def test_join_fragments_counts():
    rel = course_relation()
    whole = join_fragments(rel, [frozenset(rel.schema.names)])
    assert whole == len({tuple(map(repr, r)) for r in rel.rows()})
    assert join_fragments(rel, []) == 0


def test_lossy_split_detected_by_join_count():
    """Splitting a keyed relation on a non-MVD inflates the join."""
    rows = [(0, "x", "p"), (0, "y", "q")]
    rel = Relation.from_rows(["g", "u", "v"], rows)
    fragments = [frozenset({"g", "u"}), frozenset({"g", "v"})]
    joined = join_fragments(rel, fragments)
    assert joined == 4  # cross product: the split is lossy (2 real rows)


def test_max_splits_bounds_recursion():
    rel = course_relation()
    result = fourth_nf_decompose(rel, max_splits=0)
    assert result.fragments == [frozenset(rel.schema.names)]
