"""Unit tests for the execution engine (repro.parallel.executor).

Every backend must honour the same contract: item-ordered results,
left-fold map_reduce, typed cancel/timeout/crash errors, and metrics
through the wired registry. The process-backend cases use tiny task
counts so the whole file stays tier-1 fast.
"""

import os
import time

import pytest

from repro.errors import ParallelExecutionError, TaskTimeoutError, WorkerCrashError
from repro.obs import MetricsRegistry
from repro.parallel import (
    BACKENDS,
    DEFAULT_WORKERS_CAP,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    make_executor,
    resolve_workers,
)
from repro.resilience.cancel import CancelledError, CancelToken


# Process tasks must be picklable -> module level.
def _square(x):
    return x * x


def _slow_identity(x):
    time.sleep(0.2)
    return x


def _die(x):
    os._exit(3)


def _backends():
    """One instance per backend, pools sized small."""
    return [
        SerialExecutor(registry=MetricsRegistry()),
        ThreadExecutor(2, registry=MetricsRegistry()),
        ProcessExecutor(2, registry=MetricsRegistry()),
    ]


# -- knob normalization ------------------------------------------------------

def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(-1) == default_workers()


def test_default_workers_is_capped():
    assert 1 <= default_workers() <= DEFAULT_WORKERS_CAP


def test_make_executor_backend_dispatch():
    assert make_executor("serial", 4).backend == "serial"
    # <=1 worker always collapses to serial, whatever the backend.
    assert isinstance(make_executor("process", 1), SerialExecutor)
    assert isinstance(make_executor("thread", 1), SerialExecutor)
    with make_executor("thread", 2) as ex:
        assert isinstance(ex, ThreadExecutor)
    with make_executor("process", 2) as ex:
        assert isinstance(ex, ProcessExecutor)
    with pytest.raises(ValueError):
        make_executor("gpu", 4)
    assert tuple(BACKENDS) == ("serial", "thread", "process")


# -- map contract ------------------------------------------------------------

def test_map_preserves_item_order_on_every_backend():
    items = list(range(10))
    for ex in _backends():
        with ex:
            assert ex.map(_square, items) == [x * x for x in items]


def test_map_reduce_left_fold_order():
    # String concatenation is order-sensitive: the fold must be
    # left-to-right in item order on every backend.
    for ex in _backends():
        with ex:
            folded = ex.map_reduce(str, [1, 2, 3, 4], lambda a, b: a + b)
            assert folded == "1234"


def test_map_reduce_rejects_empty_input():
    with SerialExecutor(registry=MetricsRegistry()) as ex:
        with pytest.raises(ValueError):
            ex.map_reduce(_square, [], lambda a, b: a + b)


def test_map_records_metrics():
    registry = MetricsRegistry()
    with ThreadExecutor(2, registry=registry) as ex:
        ex.map(_square, range(5))
    labels = {"backend": "thread"}
    assert registry.counter("parallel_tasks_total", labels=labels).value == 5
    assert registry.histogram("parallel_worker_seconds", labels=labels).count == 5


# -- cancellation / timeout / crash -----------------------------------------

def test_pre_cancelled_token_aborts_before_any_task():
    token = CancelToken()
    token.set("client went away")
    for ex in _backends():
        with ex:
            with pytest.raises(CancelledError):
                ex.map(_square, [1, 2], cancel_token=token)


def test_serial_timeout_is_typed():
    with SerialExecutor(registry=MetricsRegistry()) as ex:
        with pytest.raises(TaskTimeoutError):
            ex.map(_slow_identity, range(5), timeout=0.05)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_pool_timeout_is_typed(backend):
    with make_executor(backend, 2, registry=MetricsRegistry()) as ex:
        with pytest.raises(TaskTimeoutError) as excinfo:
            ex.map(_slow_identity, range(8), timeout=0.1)
        assert isinstance(excinfo.value, ParallelExecutionError)


def test_process_worker_death_surfaces_as_worker_crash_error():
    with ProcessExecutor(2, registry=MetricsRegistry()) as ex:
        with pytest.raises(WorkerCrashError):
            ex.map(_die, [1])
        # The pool is rebuilt: the executor stays usable afterwards.
        assert ex.map(_square, [3]) == [9]


def test_worker_crash_error_is_a_repro_error():
    from repro.errors import ReproError

    assert issubclass(WorkerCrashError, ReproError)
    assert issubclass(TaskTimeoutError, TimeoutError)
