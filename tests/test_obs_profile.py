"""Tests for the sampling profiler and per-stage memory accounting."""

import threading
import time
import tracemalloc

import pytest

from repro.core.fdx import FDX
from repro.dataset.relation import Relation
from repro.obs import MemoryTracker, SamplingProfiler
from repro.obs.profile import _NULL_STAGE


def _busy_wait(seconds):
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(i * i for i in range(500))
    return total


# -- SamplingProfiler --------------------------------------------------------

def test_profiler_captures_busy_function():
    with SamplingProfiler(hz=500) as profiler:
        _busy_wait(0.3)
    assert profiler.n_samples > 0
    lines = profiler.collapsed_lines()
    assert lines, "no stacks collected"
    assert any("_busy_wait" in line for line in lines)
    # Collapsed format: "frame;frame;...;leaf count", most-sampled first.
    stack, count = lines[0].rsplit(" ", 1)
    assert ";" in stack and int(count) >= 1
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts, reverse=True)


def test_profiler_prefixes_thread_roots():
    worker = threading.Thread(
        target=_busy_wait, args=(0.3,), name="bench-worker"
    )
    with SamplingProfiler(hz=500) as profiler:
        worker.start()
        worker.join()
    stacks = profiler.collapsed()
    assert any(stack.startswith("thread:bench-worker;") for stack in stacks)
    # The profiler never samples its own daemon thread.
    assert not any("repro-profiler" in stack for stack in stacks)


def test_profiler_single_thread_mode():
    worker = threading.Thread(target=_busy_wait, args=(0.25,), name="other")
    worker.start()
    with SamplingProfiler(hz=500, all_threads=False) as profiler:
        _busy_wait(0.25)
    worker.join()
    stacks = profiler.collapsed()
    assert stacks
    assert all(not stack.startswith("thread:") for stack in stacks)


def test_profiler_write_and_top(tmp_path):
    with SamplingProfiler(hz=500) as profiler:
        _busy_wait(0.25)
    out = tmp_path / "profile.collapsed"
    n_samples = profiler.write(str(out))
    assert n_samples == profiler.n_samples
    content = out.read_text().splitlines()
    assert content and all(line.rsplit(" ", 1)[1].isdigit() for line in content)
    top = profiler.top(3)
    assert top and all(isinstance(count, int) for _, count in top)


def test_profiler_lifecycle_guards():
    profiler = SamplingProfiler(hz=200)
    profiler.start()
    with pytest.raises(RuntimeError):
        profiler.start()
    profiler.stop()
    profiler.stop()  # idempotent
    profiler.clear()
    assert profiler.n_samples == 0 and not profiler.collapsed()
    with pytest.raises(ValueError):
        SamplingProfiler(hz=0)


# -- MemoryTracker -----------------------------------------------------------

def test_memory_tracker_records_stage_peaks():
    tracker = MemoryTracker(enabled=True)
    with tracker:
        with tracker.stage("alloc"):
            block = bytearray(4 * 1024 * 1024)
            del block  # freed before stage exit: the *peak* must still see it
        with tracker.stage("idle"):
            pass
    assert tracker.stage_bytes["alloc"] >= 4 * 1000 * 1000
    assert tracker.stage_bytes["idle"] >= 0
    assert not tracemalloc.is_tracing()


def test_memory_tracker_accumulates_repeated_stage():
    tracker = MemoryTracker(enabled=True)
    with tracker:
        for _ in range(2):
            with tracker.stage("loop"):
                block = bytearray(1024 * 1024)
                del block
    assert tracker.stage_bytes["loop"] >= 2 * 1000 * 1000


def test_memory_tracker_disabled_is_shared_noop():
    tracker = MemoryTracker(enabled=False)
    with tracker:
        assert tracker.stage("anything") is _NULL_STAGE
        with tracker.stage("anything"):
            bytearray(1024)
    assert tracker.stage_bytes == {}
    assert not tracemalloc.is_tracing()


def test_memory_tracker_leaves_outer_tracing_running():
    tracemalloc.start()
    try:
        tracker = MemoryTracker(enabled=True)
        with tracker:
            with tracker.stage("inner"):
                pass
        assert tracemalloc.is_tracing()  # ownership stays with the outer user
    finally:
        tracemalloc.stop()


# -- pipeline integration ----------------------------------------------------

def _relation(n=300):
    rows = [(f"z{i % 7}", f"c{i % 7}", f"s{i % 2}") for i in range(n)]
    return Relation.from_rows(["zip", "city", "state"], rows)


def test_fdx_track_memory_populates_stage_bytes():
    result = FDX(track_memory=True).discover(_relation())
    stage_bytes = result.diagnostics["stage_bytes"]
    assert set(stage_bytes) == set(result.diagnostics["stage_seconds"])
    assert all(isinstance(v, int) and v >= 0 for v in stage_bytes.values())
    # The transform materializes the O(n*p) pair sample: it dominates.
    assert stage_bytes["transform"] == max(stage_bytes.values())


def test_fdx_default_has_no_stage_bytes():
    result = FDX().discover(_relation())
    assert "stage_bytes" not in result.diagnostics
