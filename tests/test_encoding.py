"""Tests for repro.dataset.encoding."""

import numpy as np

from repro.dataset.encoding import label_encode, numeric_encode, one_hot_encode
from repro.dataset.relation import MISSING, Relation
from repro.dataset.schema import Attribute, AttributeType, Schema


def make_relation():
    schema = Schema([
        Attribute("cat"),
        Attribute("num", AttributeType.NUMERIC),
    ])
    return Relation(schema, {
        "cat": ["a", "b", "a", MISSING],
        "num": [1.0, 2.0, MISSING, 4.0],
    })


def test_label_encode_codes_and_missing():
    enc = label_encode(make_relation())
    assert enc.matrix.shape == (4, 2)
    assert enc.matrix[0, 0] == enc.matrix[2, 0]  # both 'a'
    assert enc.matrix[3, 0] == -1  # missing
    assert enc.decode(0, int(enc.matrix[0, 0])) == "a"
    assert enc.decode(0, -1) is None


def test_label_encode_domains_sorted():
    enc = label_encode(make_relation())
    assert enc.domains[0] == ["a", "b"]


def test_numeric_encode_standardized():
    X = numeric_encode(make_relation())
    assert X.shape == (4, 2)
    assert np.allclose(X.mean(axis=0), 0.0, atol=1e-9)


def test_numeric_encode_unstandardized_keeps_values():
    X = numeric_encode(make_relation(), standardize=False)
    assert X[0, 1] == 1.0
    assert X[3, 1] == 4.0
    # Missing numeric imputed with the mean of observed values.
    assert X[2, 1] == np.mean([1.0, 2.0, 4.0])


def test_numeric_encode_constant_column_no_nan():
    rel = Relation.from_rows(["c"], [("x",), ("x",)])
    X = numeric_encode(rel)
    assert np.all(np.isfinite(X))


def test_one_hot_shapes_and_columns():
    M, cols = one_hot_encode(make_relation())
    assert M.shape[0] == 4
    assert M.shape[1] == len(cols)
    # Missing row encodes as all-zero within its attribute block.
    cat_cols = [i for i, (a, _) in enumerate(cols) if a == "cat"]
    assert M[3, cat_cols].sum() == 0.0


def test_one_hot_max_domain_pools_rare_values():
    rel = Relation.from_rows(["c"], [(v,) for v in "aaabbc"])
    M, cols = one_hot_encode(rel, max_domain=2)
    values = [v for _, v in cols]
    assert values == ["a", "b"]  # 'c' pooled away
    assert M.shape == (6, 2)


def test_one_hot_row_sums_at_most_one_per_attribute():
    M, cols = one_hot_encode(make_relation())
    for attr in ("cat", "num"):
        block = [i for i, (a, _) in enumerate(cols) if a == attr]
        assert np.all(M[:, block].sum(axis=1) <= 1.0)
