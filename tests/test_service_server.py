"""End-to-end tests for the FD-discovery HTTP service.

Covers the acceptance criteria of the service subsystem: concurrent
``/v1/discover`` on a 1000x10 relation, cache-hit on repeat requests
(observable in ``/v1/metrics``), and streaming sessions matching one-shot
:class:`IncrementalFDX`.
"""

import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.fd import FD
from repro.core.incremental import IncrementalFDX
from repro.dataset.relation import Relation
from repro.service import ServiceClient, ServiceError, start_in_thread
from repro.service.server import DiscoveryService


def synthetic_relation(n=1000, p=10, seed=0):
    """1000x10 relation with an embedded a0 -> a1 dependency."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(20))
        rows.append(tuple([base, base % 5] + [int(rng.integers(6)) for _ in range(p - 2)]))
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


@pytest.fixture(scope="module")
def handle():
    with start_in_thread(workers=4, job_timeout=60.0) as h:
        ServiceClient(h.base_url).wait_until_healthy()
        yield h


@pytest.fixture
def client(handle):
    return ServiceClient(handle.base_url, timeout=60.0)


class TestDiscover:
    def test_sync_discover_finds_embedded_fd(self, client):
        result = client.discover(synthetic_relation(seed=101))
        assert FD(["a0"], "a1") in set(result.fds)

    def test_async_submit_and_poll(self, client):
        job_id = client.submit(synthetic_relation(seed=102))
        assert job_id.startswith("job-")
        status = client.wait_for_job(job_id)
        assert status["state"] == "done"
        fds = {(tuple(f["lhs"]), f["rhs"]) for f in status["result"]["fds"]}
        assert (("a0",), "a1") in fds

    def test_eight_concurrent_discoveries(self, client):
        relations = [synthetic_relation(seed=200 + i) for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(client.discover, relations))
        assert len(results) == 8
        for result in results:
            assert FD(["a0"], "a1") in set(result.fds)

    def test_repeat_request_hits_cache(self, client):
        rel = synthetic_relation(seed=103)
        before = client.metrics()["counters"].get("discover_cache_hits", 0)
        first = client.discover_raw(rel)
        assert first["cached"] is False
        second = client.discover_raw(rel)
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert second["fingerprint"] == first["fingerprint"]
        after = client.metrics()["counters"]["discover_cache_hits"]
        assert after == before + 1

    def test_cache_hit_is_much_faster(self, client):
        rel = synthetic_relation(seed=104)
        t0 = time.perf_counter()
        assert client.discover_raw(rel)["cached"] is False
        cold = time.perf_counter() - t0
        hits = []
        for _ in range(5):
            t0 = time.perf_counter()
            assert client.discover_raw(rel)["cached"] is True
            hits.append(time.perf_counter() - t0)
        # Acceptance bar is 10x; assert 5x here to keep CI noise-immune
        # (the service benchmark records the full ratio).
        assert cold > 5 * min(hits)

    def test_different_hyperparameters_miss_cache(self, client):
        rel = synthetic_relation(seed=105)
        assert client.discover_raw(rel)["cached"] is False
        assert client.discover_raw(rel, {"sparsity": 0.2})["cached"] is False

    def test_malformed_request_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/discover", {"relation": {"attributes": []}})
        assert excinfo.value.status == 400

    def test_empty_body_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/discover", None)
        assert excinfo.value.status == 400

    def test_invalid_json_rejected(self, handle):
        request = urllib.request.Request(
            f"{handle.base_url}/v1/discover",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-nope")
        assert excinfo.value.status == 404


class TestSessions:
    def test_streaming_session_matches_oneshot_incremental(self, client):
        rel = synthetic_relation(n=1000, seed=42)
        session_id = client.create_session({"seed": 5})
        reference = IncrementalFDX(seed=5)
        for start in range(0, 1000, 200):  # 5 batches
            batch = rel.select_rows(np.arange(start, start + 200))
            info = client.append_batch(session_id, batch)
            reference.add_batch(batch)
        assert info["n_batches"] == 5 and info["n_rows_seen"] == 1000
        via_service = client.session_fds(session_id)
        assert set(via_service.fds) == set(reference.discover().fds)
        client.close_session(session_id)

    def test_session_lifecycle_and_errors(self, client):
        session_id = client.create_session()
        with pytest.raises(ServiceError) as excinfo:
            client.session_fds(session_id)  # no data yet
        assert excinfo.value.status == 409
        client.append_batch(session_id, synthetic_relation(n=200, seed=7))
        assert client.session_info(session_id)["n_rows_seen"] == 200
        client.reset_session(session_id)
        assert client.session_info(session_id)["n_rows_seen"] == 0
        client.close_session(session_id)
        with pytest.raises(ServiceError) as excinfo:
            client.session_info(session_id)
        assert excinfo.value.status == 404

    def test_schema_drift_rejected_with_409(self, client):
        session_id = client.create_session()
        client.append_batch(session_id, synthetic_relation(n=100, seed=8))
        with pytest.raises(ServiceError) as excinfo:
            client.append_batch(
                session_id, Relation.from_rows(["x", "y"], [(1, 2)] * 100)
            )
        assert excinfo.value.status == 409
        client.close_session(session_id)


class TestIntrospection:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol_version"] == 1
        assert "version" in health

    def test_metrics_shape(self, client):
        client.healthz()
        metrics = client.metrics()
        assert metrics["counters"]["requests_total"] > 0
        assert 0.0 <= metrics["cache_hit_rate"] <= 1.0
        assert metrics["queue_depth"] >= 0
        health_latency = metrics["latency"]["healthz"]
        assert health_latency["count"] >= 1
        assert health_latency["p50_seconds"] <= health_latency["p95_seconds"] + 1e-9
        assert health_latency["p95_seconds"] <= health_latency["p99_seconds"] + 1e-9

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/bogus")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/other")
        assert excinfo.value.status == 404


class TestObservability:
    def test_every_response_carries_a_trace_id(self, handle):
        with urllib.request.urlopen(f"{handle.base_url}/v1/healthz", timeout=10.0) as r:
            assert len(r.headers["X-Trace-Id"]) == 16

    def test_client_supplied_trace_id_is_echoed(self, handle):
        request = urllib.request.Request(
            f"{handle.base_url}/v1/healthz",
            headers={"X-Trace-Id": "deadbeefcafe0001"},
        )
        with urllib.request.urlopen(request, timeout=10.0) as r:
            assert r.headers["X-Trace-Id"] == "deadbeefcafe0001"

    def test_error_responses_carry_a_trace_id_too(self, handle):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{handle.base_url}/v1/bogus", timeout=10.0)
        assert excinfo.value.headers["X-Trace-Id"]

    def test_prometheus_exposition(self, client):
        client.discover(synthetic_relation(seed=301))
        text = client.metrics_prometheus()
        assert "# TYPE requests_total counter" in text
        assert "# TYPE http_request_seconds histogram" in text
        assert 'http_request_seconds_bucket{endpoint="discover",le="+Inf"}' in text
        assert "fdx_glasso_iterations_total" in text
        assert "fdx_discoveries_total" in text
        assert "jobs_queue_depth" in text
        # Counter monotonicity across scrapes.
        def counter_value(body, name):
            for line in body.splitlines():
                if line.startswith(f"{name} "):
                    return float(line.split()[-1])
            raise AssertionError(f"{name} missing")

        first = counter_value(text, "requests_total")
        client.healthz()
        second = counter_value(client.metrics_prometheus(), "requests_total")
        assert second > first

    def test_prometheus_content_type(self, handle):
        url = f"{handle.base_url}/v1/metrics?format=prometheus"
        with urllib.request.urlopen(url, timeout=10.0) as r:
            assert r.headers["Content-Type"].startswith("text/plain")

    def test_unknown_metrics_format_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/metrics?format=xml")
        assert excinfo.value.status == 400

    def test_glasso_iteration_counter_tracks_diagnostics(self, handle, client):
        before = handle.service.registry.counter("fdx_glasso_iterations_total").value
        result = client.discover(synthetic_relation(seed=302))
        after = handle.service.registry.counter("fdx_glasso_iterations_total").value
        assert after - before >= result.diagnostics["glasso_iterations"]

    def test_request_log_and_worker_spans_share_trace_id(self, tmp_path):
        """With --obs-jsonl, one request log line per request, and the
        pipeline spans of a discovery carry the request's trace id."""
        import json as jsonlib

        obs_path = tmp_path / "events.jsonl"
        with start_in_thread(workers=2, job_timeout=60.0,
                             obs_jsonl=str(obs_path)) as h:
            c = ServiceClient(h.base_url, timeout=60.0)
            c.wait_until_healthy()
            c.discover(synthetic_relation(n=300, seed=303))
        events = [jsonlib.loads(line) for line in obs_path.read_text().splitlines()]
        requests = [e for e in events if e["type"] == "request"]
        spans = [e for e in events if e["type"] == "span"]
        assert requests and spans
        discover_requests = [e for e in requests if e["endpoint"] == "discover"]
        assert discover_requests
        record = discover_requests[0]
        assert record["method"] == "POST" and record["status"] == 200
        assert record["cache_hit"] is False
        assert record["duration_seconds"] > 0
        pipeline_spans = [e for e in spans if e["name"] == "fdx.discover"]
        assert pipeline_spans
        assert pipeline_spans[0]["trace_id"] == record["trace_id"]


class TestDiscoveryServiceUnit:
    """Transport-free checks on the application object."""

    def test_discover_payload_validation(self):
        service = DiscoveryService(workers=1)
        try:
            with pytest.raises(Exception):
                service.discover("not a dict")
            status, body = service.job_status("job-nope")
            assert status == 404
        finally:
            service.close()

    def test_serve_reports_bind_failure(self, capsys):
        from repro.service.server import build_server, serve

        server, service = build_server()  # occupy an ephemeral port
        try:
            assert serve(port=server.server_address[1]) == 1
            assert "cannot bind" in capsys.readouterr().err
        finally:
            server.server_close()
            service.close()

    def test_async_discover_returns_202(self):
        service = DiscoveryService(workers=1)
        try:
            rel = synthetic_relation(n=300, seed=9)
            from repro.service.protocol import relation_to_wire

            status, body = service.discover(
                {"relation": relation_to_wire(rel), "wait": False}
            )
            assert status == 202
            job = service.jobs.get(body["job_id"])
            assert job.wait(timeout=30.0) == "done"
            # The async job still populated the fingerprint cache.
            status, body = service.discover(
                {"relation": relation_to_wire(rel), "wait": True}
            )
            assert status == 200 and body["cached"] is True
        finally:
            service.close()
