"""End-to-end tests for the FD-discovery HTTP service.

Covers the acceptance criteria of the service subsystem: concurrent
``/v1/discover`` on a 1000x10 relation, cache-hit on repeat requests
(observable in ``/v1/metrics``), and streaming sessions matching one-shot
:class:`IncrementalFDX`.
"""

import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.fd import FD
from repro.core.incremental import IncrementalFDX
from repro.dataset.relation import Relation
from repro.service import ServiceClient, ServiceError, start_in_thread
from repro.service.server import DiscoveryService


def synthetic_relation(n=1000, p=10, seed=0):
    """1000x10 relation with an embedded a0 -> a1 dependency."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(20))
        rows.append(tuple([base, base % 5] + [int(rng.integers(6)) for _ in range(p - 2)]))
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


@pytest.fixture(scope="module")
def handle():
    with start_in_thread(workers=4, job_timeout=60.0) as h:
        ServiceClient(h.base_url).wait_until_healthy()
        yield h


@pytest.fixture
def client(handle):
    return ServiceClient(handle.base_url, timeout=60.0)


class TestDiscover:
    def test_sync_discover_finds_embedded_fd(self, client):
        result = client.discover(synthetic_relation(seed=101))
        assert FD(["a0"], "a1") in set(result.fds)

    def test_async_submit_and_poll(self, client):
        job_id = client.submit(synthetic_relation(seed=102))
        assert job_id.startswith("job-")
        status = client.wait_for_job(job_id)
        assert status["state"] == "done"
        fds = {(tuple(f["lhs"]), f["rhs"]) for f in status["result"]["fds"]}
        assert (("a0",), "a1") in fds

    def test_eight_concurrent_discoveries(self, client):
        relations = [synthetic_relation(seed=200 + i) for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(client.discover, relations))
        assert len(results) == 8
        for result in results:
            assert FD(["a0"], "a1") in set(result.fds)

    def test_repeat_request_hits_cache(self, client):
        rel = synthetic_relation(seed=103)
        before = client.metrics()["counters"].get("discover_cache_hits", 0)
        first = client.discover_raw(rel)
        assert first["cached"] is False
        second = client.discover_raw(rel)
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert second["fingerprint"] == first["fingerprint"]
        after = client.metrics()["counters"]["discover_cache_hits"]
        assert after == before + 1

    def test_cache_hit_is_much_faster(self, client):
        rel = synthetic_relation(seed=104)
        t0 = time.perf_counter()
        assert client.discover_raw(rel)["cached"] is False
        cold = time.perf_counter() - t0
        hits = []
        for _ in range(5):
            t0 = time.perf_counter()
            assert client.discover_raw(rel)["cached"] is True
            hits.append(time.perf_counter() - t0)
        # Acceptance bar is 10x; assert 5x here to keep CI noise-immune
        # (the service benchmark records the full ratio).
        assert cold > 5 * min(hits)

    def test_different_hyperparameters_miss_cache(self, client):
        rel = synthetic_relation(seed=105)
        assert client.discover_raw(rel)["cached"] is False
        assert client.discover_raw(rel, {"sparsity": 0.2})["cached"] is False

    def test_malformed_request_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/discover", {"relation": {"attributes": []}})
        assert excinfo.value.status == 400

    def test_empty_body_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/discover", None)
        assert excinfo.value.status == 400

    def test_invalid_json_rejected(self, handle):
        request = urllib.request.Request(
            f"{handle.base_url}/v1/discover",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-nope")
        assert excinfo.value.status == 404


class TestSessions:
    def test_streaming_session_matches_oneshot_incremental(self, client):
        rel = synthetic_relation(n=1000, seed=42)
        session_id = client.create_session({"seed": 5})
        reference = IncrementalFDX(seed=5)
        for start in range(0, 1000, 200):  # 5 batches
            batch = rel.select_rows(np.arange(start, start + 200))
            info = client.append_batch(session_id, batch)
            reference.add_batch(batch)
        assert info["n_batches"] == 5 and info["n_rows_seen"] == 1000
        via_service = client.session_fds(session_id)
        assert set(via_service.fds) == set(reference.discover().fds)
        client.close_session(session_id)

    def test_session_lifecycle_and_errors(self, client):
        session_id = client.create_session()
        with pytest.raises(ServiceError) as excinfo:
            client.session_fds(session_id)  # no data yet
        assert excinfo.value.status == 409
        client.append_batch(session_id, synthetic_relation(n=200, seed=7))
        assert client.session_info(session_id)["n_rows_seen"] == 200
        client.reset_session(session_id)
        assert client.session_info(session_id)["n_rows_seen"] == 0
        client.close_session(session_id)
        with pytest.raises(ServiceError) as excinfo:
            client.session_info(session_id)
        assert excinfo.value.status == 404

    def test_schema_drift_rejected_with_409(self, client):
        session_id = client.create_session()
        client.append_batch(session_id, synthetic_relation(n=100, seed=8))
        with pytest.raises(ServiceError) as excinfo:
            client.append_batch(
                session_id, Relation.from_rows(["x", "y"], [(1, 2)] * 100)
            )
        assert excinfo.value.status == 409
        client.close_session(session_id)


class TestIntrospection:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol_version"] == 1
        assert "version" in health

    def test_metrics_shape(self, client):
        client.healthz()
        metrics = client.metrics()
        assert metrics["counters"]["requests_total"] > 0
        assert 0.0 <= metrics["cache_hit_rate"] <= 1.0
        assert metrics["queue_depth"] >= 0
        health_latency = metrics["latency"]["healthz"]
        assert health_latency["count"] >= 1
        assert health_latency["p50_seconds"] <= health_latency["p95_seconds"] + 1e-9

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/bogus")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/other")
        assert excinfo.value.status == 404


class TestDiscoveryServiceUnit:
    """Transport-free checks on the application object."""

    def test_discover_payload_validation(self):
        service = DiscoveryService(workers=1)
        try:
            with pytest.raises(Exception):
                service.discover("not a dict")
            status, body = service.job_status("job-nope")
            assert status == 404
        finally:
            service.close()

    def test_serve_reports_bind_failure(self, capsys):
        from repro.service.server import build_server, serve

        server, service = build_server()  # occupy an ephemeral port
        try:
            assert serve(port=server.server_address[1]) == 1
            assert "cannot bind" in capsys.readouterr().err
        finally:
            server.server_close()
            service.close()

    def test_async_discover_returns_202(self):
        service = DiscoveryService(workers=1)
        try:
            rel = synthetic_relation(n=300, seed=9)
            from repro.service.protocol import relation_to_wire

            status, body = service.discover(
                {"relation": relation_to_wire(rel), "wait": False}
            )
            assert status == 202
            job = service.jobs.get(body["job_id"])
            assert job.wait(timeout=30.0) == "done"
            # The async job still populated the fingerprint cache.
            status, body = service.discover(
                {"relation": relation_to_wire(rel), "wait": True}
            )
            assert status == 200 and body["cached"] is True
        finally:
            service.close()
