"""Cross-process trace stitching: one trace id over all backends.

The acceptance contract of the flight-recorder PR: a map (or a
supervised ``run_in_process`` job) started under an open span yields a
*single* trace — worker-side spans share the request's trace id and are
parent-linked back to the submitting span — identically on the serial,
thread and process backends.
"""

import os

import pytest

from repro.obs import ListSink, Tracer, set_trace_id, write_chrome_trace
from repro.parallel import make_executor
from repro.parallel.worker import run_in_process


def _square(x):
    return x * x


def _traced_child():
    """Module-level (picklable) job body that opens its own span."""
    from repro.obs import get_tracer

    with get_tracer().span("inner.stage"):
        return os.getpid()


def _span_events(sink):
    return [e for e in sink.events if e.get("type") == "span"]


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_map_single_trace_across_backends(backend):
    sink = ListSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    token = set_trace_id("feedface00000001")
    try:
        with make_executor(backend, workers=2, tracer=tracer) as executor:
            with tracer.span("request.root"):
                results = executor.map(_square, [1, 2, 3])
    finally:
        set_trace_id(None)
    assert results == [1, 4, 9]

    spans = _span_events(sink)
    # Exactly one trace id across handler-side and worker-side spans.
    assert {s["trace_id"] for s in spans} == {"feedface00000001"}
    by_name = {}
    for s in spans:
        by_name.setdefault(s["name"], []).append(s)
    assert len(by_name["parallel.map"]) == 1
    assert len(by_name["parallel.task"]) == 3
    map_span = by_name["parallel.map"][0]
    # Every task span is parent-linked to the map span, regardless of
    # which side of a process boundary it ran on.
    assert all(t["parent_id"] == map_span["span_id"] for t in by_name["parallel.task"])
    assert map_span["parent_id"] == by_name["request.root"][0]["span_id"]
    del token


def test_process_task_spans_carry_worker_pid():
    sink = ListSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    with make_executor("process", workers=2, tracer=tracer) as executor:
        with tracer.span("request.root"):
            executor.map(_square, [1, 2])
    tasks = [e for e in _span_events(sink) if e["name"] == "parallel.task"]
    assert len(tasks) == 2
    for t in tasks:
        assert t["attributes"]["worker_pid"] != os.getpid()


def test_run_in_process_stitches_worker_spans():
    sink = ListSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    with tracer.span("service.job") as root:
        child_pid = run_in_process(_traced_child, tracer=tracer)
    assert child_pid != os.getpid()

    spans = {e["name"]: e for e in _span_events(sink)}
    assert set(spans) == {"service.job", "worker.job", "inner.stage"}
    assert len({e["trace_id"] for e in spans.values()}) == 1
    assert spans["worker.job"]["parent_id"] == root.span_id
    assert spans["inner.stage"]["parent_id"] == spans["worker.job"]["span_id"]
    assert spans["worker.job"]["attributes"]["worker_pid"] == child_pid
    # The in-memory tree was grafted too, not just the flat events.
    names = [s.name for s in root.walk()]
    assert names == ["service.job", "worker.job", "inner.stage"]


def test_stitched_trace_exports_to_perfetto(tmp_path):
    sink = ListSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    with make_executor("process", workers=2, tracer=tracer) as executor:
        with tracer.span("request.root"):
            executor.map(_square, [1, 2, 3])
    out = tmp_path / "trace.perfetto.json"
    summary = write_chrome_trace(sink.events, str(out))
    assert summary["traces"] == 1
    assert summary["spans"] == 5  # root + map + 3 tasks
    import json

    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert all(e["ph"] in ("X", "M", "i") for e in events)
    # Worker-side spans land on their own named Perfetto threads.
    thread_names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert any(name.startswith("worker ") for name in thread_names)
    assert "handler" in {n.split(" #")[0] for n in thread_names}
