"""Tier-2 smoke tests for the observability stack, end to end.

Drives the real CLI (``python -m repro discover --trace``) and the real
server process (``python -m repro serve --obs-jsonl``) as subprocesses,
checking the stage-timing tree, the JSONL event log, the Prometheus
exposition and the ``X-Trace-Id`` header. Excluded from the default
tier-1 run by the ``tier2`` marker; select with ``pytest -m tier2``.
"""

import json
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
STAGES = ("fdx.transform", "structure.covariance", "structure.glasso",
          "structure.factorization", "fdx.generate_fds")


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return env


def _write_csv(path):
    lines = ["zip,city,state,noise"]
    for i in range(400):
        lines.append(f"z{i % 9},c{i % 9},s{i % 3},n{i % 7 if i % 11 else (i % 5)}")
    path.write_text("\n".join(lines) + "\n")


@pytest.mark.tier2
def test_cli_discover_trace_prints_stage_tree(tmp_path):
    csv = tmp_path / "rel.csv"
    _write_csv(csv)
    trace_out = tmp_path / "spans.jsonl"
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "discover", str(csv),
         "--trace", "--trace-out", str(trace_out)],
        capture_output=True, text=True, env=_env(), timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    out = completed.stdout

    # The tree names the root and every pipeline stage, with timings.
    assert re.search(r"trace [0-9a-f]{16}:", out)
    assert "fdx.discover" in out
    for stage in STAGES:
        assert stage in out, f"{stage} missing from trace tree:\n{out}"

    # The stage sum accounts for the reported total within 10%.
    match = re.search(r"stage sum [\d.]+s of total [\d.]+s \(([\d.]+)%\)", out)
    assert match, f"no stage-sum line in:\n{out}"
    assert 90.0 <= float(match.group(1)) <= 110.0

    # The JSONL trace file holds one parseable span event per span.
    events = [json.loads(line) for line in trace_out.read_text().splitlines()]
    assert events and all(e["type"] == "span" for e in events)
    names = {e["name"] for e in events}
    assert "fdx.discover" in names
    trace_ids = {e["trace_id"] for e in events}
    assert len(trace_ids) == 1  # one trace for the whole run


@pytest.mark.tier2
def test_serve_prometheus_and_trace_headers(tmp_path):
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
    obs_path = tmp_path / "events.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "2", "--obs-jsonl", str(obs_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=_env(),
    )
    base = f"http://127.0.0.1:{port}"
    try:
        deadline = time.monotonic() + 30.0
        while True:
            try:
                with urllib.request.urlopen(f"{base}/v1/healthz", timeout=2.0) as r:
                    assert r.headers["X-Trace-Id"]
                    break
            except OSError:
                if time.monotonic() > deadline:
                    raise AssertionError(f"server never came up: {proc.stderr}")
                time.sleep(0.1)

        # A discovery populates the pipeline metrics.
        rows = [[f"z{i % 9}", f"c{i % 9}", f"s{i % 3}"] for i in range(300)]
        payload = json.dumps({
            "relation": {"attributes": ["zip", "city", "state"], "rows": rows},
            "wait": True,
        }).encode()
        request = urllib.request.Request(
            f"{base}/v1/discover", data=payload, method="POST",
            headers={"Content-Type": "application/json",
                     "X-Trace-Id": "0123456789abcdef"},
        )
        with urllib.request.urlopen(request, timeout=60.0) as r:
            assert r.headers["X-Trace-Id"] == "0123456789abcdef"
            body = json.loads(r.read())
        assert body["result"]["fds"]

        with urllib.request.urlopen(
            f"{base}/v1/metrics?format=prometheus", timeout=10.0
        ) as r:
            assert r.headers["Content-Type"].startswith("text/plain")
            text = r.read().decode()
        assert "# TYPE http_request_seconds histogram" in text
        assert 'http_request_seconds_bucket{endpoint="discover",le="+Inf"} 1' in text
        assert "fdx_glasso_iterations_total" in text
        assert "fdx_discoveries_total 1" in text
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # The event log ties the worker's pipeline span to the request trace.
    events = [json.loads(line) for line in obs_path.read_text().splitlines()]
    discover_spans = [e for e in events if e.get("name") == "fdx.discover"]
    assert discover_spans
    assert discover_spans[0]["trace_id"] == "0123456789abcdef"
    requests = [e for e in events if e["type"] == "request"
                and e["endpoint"] == "discover"]
    assert requests and requests[0]["trace_id"] == "0123456789abcdef"
