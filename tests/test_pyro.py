"""Tests for repro.baselines.pyro."""

import numpy as np
import pytest

from repro.baselines.pyro import Pyro
from repro.baselines.tane import Tane, TimeBudgetExceeded
from repro.core.fd import FD
from repro.dataset.relation import Relation


def exact_fd_relation(n=200, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        k = int(rng.integers(10))
        rows.append((k, k % 3, (k * 7) % 5, int(rng.integers(50))))
    return Relation.from_rows(["k", "a", "b", "z"], rows)


def test_discovers_exact_fds():
    res = Pyro(max_error=0.0).discover(exact_fd_relation())
    assert FD(["k"], "a") in res.fds
    assert FD(["k"], "b") in res.fds


def test_agrees_with_tane_on_minimal_fds_depth_limited():
    """Same semantics as TANE at matched lattice depth: identical minimal
    FD sets on exact data."""
    rel = exact_fd_relation()
    pyro_fds = set(Pyro(max_error=0.0, max_lhs_size=2).discover(rel).fds)
    tane_fds = set(Tane(max_error=0.0, max_lhs_size=2).discover(rel).fds)
    assert pyro_fds == tane_fds


def test_minimality():
    res = Pyro(max_error=0.0).discover(exact_fd_relation())
    fds = set(res.fds)
    for fd in fds:
        for other in fds:
            if other != fd and other.rhs == fd.rhs:
                assert not set(other.lhs) < set(fd.lhs)


def test_estimates_cheaper_than_validations():
    res = Pyro(max_error=0.0).discover(exact_fd_relation())
    assert res.validations <= res.estimates_computed


def test_sampling_slack_still_validates_borderline():
    """Even with a tiny sample, exact validation confirms real FDs."""
    res = Pyro(max_error=0.0, sample_rows=20).discover(exact_fd_relation(500))
    assert FD(["k"], "a") in res.fds


def test_time_limit_raises():
    rng = np.random.default_rng(0)
    rows = [tuple(int(rng.integers(40)) for _ in range(14)) for _ in range(800)]
    rel = Relation.from_rows([f"c{i}" for i in range(14)], rows)
    with pytest.raises(TimeBudgetExceeded):
        Pyro(max_error=0.2, max_lhs_size=5, time_limit=0.05).discover(rel)


def test_errors_below_threshold():
    res = Pyro(max_error=0.05).discover(exact_fd_relation())
    assert all(e <= 0.05 + 1e-9 for e in res.errors.values())


def test_invalid_error_rejected():
    with pytest.raises(ValueError):
        Pyro(max_error=-1)


def test_deterministic_given_seed():
    rel = exact_fd_relation()
    a = Pyro(seed=5).discover(rel).fds
    b = Pyro(seed=5).discover(rel).fds
    assert a == b
