"""Tests for repro.linalg.model_selection (eBIC penalty selection)."""

import numpy as np
import pytest

from repro.linalg.covariance import correlation_from_covariance, empirical_covariance
from repro.linalg.glasso import graphical_lasso
from repro.linalg.model_selection import (
    DEFAULT_LAMBDA_GRID,
    ebic_score,
    gaussian_loglik,
    select_lambda_ebic,
)


def sparse_structure_data(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    z = rng.normal(size=n)
    x1 = 0.9 * z + 0.3 * rng.normal(size=n)
    x2 = rng.normal(size=n)
    x3 = rng.normal(size=n)
    return np.stack([z, x1, x2, x3], axis=1)


def test_loglik_identity():
    S = np.eye(3)
    assert gaussian_loglik(S, np.eye(3)) == pytest.approx(-3.0)


def test_loglik_rejects_indefinite():
    assert gaussian_loglik(np.eye(2), np.diag([1.0, -1.0])) == -np.inf


def test_ebic_penalizes_extra_edges():
    """Compared at their refit MLEs, the true 1-edge support beats the
    saturated model."""
    from repro.linalg.model_selection import constrained_mle

    X = sparse_structure_data()
    S = correlation_from_covariance(empirical_covariance(X))
    n, p = X.shape
    true_support = np.eye(p, dtype=bool)
    true_support[0, 1] = true_support[1, 0] = True
    sparse = constrained_mle(S, true_support)
    dense = graphical_lasso(S, 0.0).precision  # saturated MLE
    assert ebic_score(S, sparse, n) < ebic_score(S, dense, n)


def test_constrained_mle_matches_support():
    from repro.linalg.model_selection import constrained_mle

    X = sparse_structure_data()
    S = correlation_from_covariance(empirical_covariance(X))
    support = np.eye(4, dtype=bool)
    support[0, 1] = support[1, 0] = True
    theta = constrained_mle(S, support)
    # Zero off the support; matches S on the support (covariance selection).
    assert abs(theta[2, 3]) < 1e-6
    W = np.linalg.inv(theta)
    assert W[0, 1] == pytest.approx(S[0, 1], abs=1e-6)
    assert W[0, 0] == pytest.approx(S[0, 0], abs=1e-6)


def test_selection_recovers_true_edge_only():
    X = sparse_structure_data()
    S = correlation_from_covariance(empirical_covariance(X))
    sel = select_lambda_ebic(S, n_samples=X.shape[0])
    best_precision = graphical_lasso(S, sel.best_lambda).precision
    support = np.abs(best_precision) > 1e-10
    np.fill_diagonal(support, False)
    assert support[0, 1]          # the real edge survives
    assert not support[2, 3]      # independent pair stays absent


def test_selection_returns_full_diagnostics():
    X = sparse_structure_data(500)
    S = correlation_from_covariance(empirical_covariance(X))
    sel = select_lambda_ebic(S, n_samples=500, grid=(0.01, 0.1))
    assert set(sel.scores) == {0.01, 0.1}
    assert set(sel.n_edges) == {0.01, 0.1}
    assert sel.best_lambda in (0.01, 0.1)
    assert sel.n_edges[0.01] >= sel.n_edges[0.1]


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        select_lambda_ebic(np.eye(2), 100, grid=())


def test_default_grid_sorted_positive():
    assert all(g > 0 for g in DEFAULT_LAMBDA_GRID)
    assert list(DEFAULT_LAMBDA_GRID) == sorted(DEFAULT_LAMBDA_GRID)


def test_fdx_ebic_mode():
    from repro.core.fd import FD
    from repro.core.fdx import FDX
    from repro.dataset.relation import Relation

    rng = np.random.default_rng(1)
    rows = [(int(a), int(a) % 4, int(rng.integers(5)))
            for a in rng.integers(12, size=800)]
    rel = Relation.from_rows(["a", "b", "c"], rows)
    result = FDX(lam="ebic").discover(rel)
    assert FD(["a"], "b") in result.fds


def test_unknown_penalty_rule_rejected():
    from repro.core.structure import learn_structure

    with pytest.raises(ValueError, match="penalty rule"):
        learn_structure(np.random.default_rng(0).normal(size=(50, 3)), lam="magic")
