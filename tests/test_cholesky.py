"""Tests for repro.linalg.cholesky."""

import numpy as np
import pytest

from repro.linalg.cholesky import (
    factorize_with_order,
    ldl_decompose,
    udu_decompose,
)


def random_spd(p, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(p, p))
    return A @ A.T + p * np.eye(p)


def test_ldl_reconstructs():
    A = random_spd(6)
    L, d = ldl_decompose(A)
    assert np.allclose(L @ np.diag(d) @ L.T, A, atol=1e-8)


def test_ldl_unit_lower():
    A = random_spd(5, seed=1)
    L, d = ldl_decompose(A)
    assert np.allclose(np.diag(L), 1.0)
    assert np.allclose(L, np.tril(L))
    assert np.all(d > 0)


def test_ldl_semidefinite_floors_pivots():
    A = np.zeros((3, 3))
    L, d = ldl_decompose(A, jitter=1e-10)
    assert np.all(d >= 1e-10)


def test_udu_reconstructs():
    A = random_spd(7, seed=2)
    U, d = udu_decompose(A)
    assert np.allclose(U @ np.diag(d) @ U.T, A, atol=1e-8)


def test_udu_unit_upper():
    A = random_spd(5, seed=3)
    U, d = udu_decompose(A)
    assert np.allclose(np.diag(U), 1.0)
    assert np.allclose(U, np.triu(U))
    assert np.all(d > 0)


def test_udu_recovers_linear_sem_autoregression():
    """Theta built from a known strictly-upper B factors back to B."""
    p = 5
    B = np.zeros((p, p))
    B[0, 2] = 0.7
    B[1, 2] = 0.4
    B[2, 3] = 0.9
    omega = np.diag([1.0, 1.5, 0.2, 0.3, 2.0])
    I = np.eye(p)
    theta = (I - B) @ np.linalg.inv(omega) @ (I - B).T
    U, d = udu_decompose(theta)
    assert np.allclose(I - U, B, atol=1e-8)
    assert np.allclose(d, 1.0 / np.diag(omega), atol=1e-8)


def test_factorize_with_order_identity():
    A = random_spd(4, seed=4)
    fact = factorize_with_order(A, [0, 1, 2, 3])
    assert np.allclose(fact.reconstruct(), A, atol=1e-8)


def test_factorize_with_permutation_reconstructs_original():
    A = random_spd(6, seed=5)
    fact = factorize_with_order(A, [3, 1, 5, 0, 2, 4])
    assert np.allclose(fact.reconstruct(), A, atol=1e-8)


def test_factorize_rejects_non_permutation():
    A = random_spd(3)
    with pytest.raises(ValueError):
        factorize_with_order(A, [0, 0, 1])


def test_autoregression_strictly_upper_in_permuted_system():
    A = random_spd(5, seed=6)
    fact = factorize_with_order(A, [4, 2, 0, 1, 3])
    B = fact.autoregression
    assert np.allclose(np.diag(B), 0.0)
    assert np.allclose(B, np.triu(B, k=1))


def test_autoregression_in_original_order_permutes_correctly():
    """Entry (i, j) in original order equals B[pos(i), pos(j)]."""
    A = random_spd(4, seed=7)
    order = np.array([2, 0, 3, 1])
    fact = factorize_with_order(A, order)
    B = fact.autoregression
    B_orig = fact.autoregression_in_original_order()
    inv = np.empty(4, dtype=int)
    inv[order] = np.arange(4)
    for i in range(4):
        for j in range(4):
            assert B_orig[i, j] == pytest.approx(B[inv[i], inv[j]])


def test_ldl_rejects_nonsquare():
    with pytest.raises(ValueError):
        ldl_decompose(np.zeros((2, 3)))
