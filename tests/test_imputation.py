"""Tests for repro.prep.imputation."""

import numpy as np
import pytest

from repro.dataset.relation import MISSING, Relation
from repro.prep.imputation import (
    AttentionImputer,
    GradientBoostedImputer,
    ModeImputer,
    imputation_f1,
)


def fd_relation(n=400, seed=0):
    """key -> target deterministic; noise attribute irrelevant."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        k = int(rng.integers(8))
        rows.append((k, f"v{k % 4}", int(rng.integers(5))))
    return Relation.from_rows(["key", "target", "noise"], rows)


def hide(relation, attr, rate, seed=1):
    rng = np.random.default_rng(seed)
    col = relation.column(attr)
    hidden = sorted(rng.choice(relation.n_rows, int(rate * relation.n_rows), replace=False))
    truth = {i: col[i] for i in hidden}
    for i in hidden:
        col[i] = MISSING
    return relation.with_column(attr, col), truth


def test_mode_imputer_predicts_majority():
    rel = Relation.from_rows(["t"], [("a",)] * 7 + [("b",)] * 3)
    imp = ModeImputer().fit(rel, "t")
    assert imp.predict(rel) == ["a"] * 10


def test_attention_imputer_uses_fd_partner():
    rel = fd_relation()
    noisy, truth = hide(rel, "target", 0.25)
    imp = AttentionImputer().fit(noisy, "target")
    preds = imp.predict(noisy)
    correct = sum(1 for i, t in truth.items() if preds[i] == t)
    assert correct / len(truth) > 0.95


def test_attention_weights_concentrate_on_determinant():
    rel = fd_relation()
    imp = AttentionImputer().fit(rel, "target")
    assert imp.attention["key"] > imp.attention["noise"]


def test_attention_imputer_no_context_falls_back_to_prior():
    rel = Relation.from_rows(["only"], [("a",)] * 6 + [("b",)] * 4)
    imp = AttentionImputer().fit(rel, "only")
    assert imp.predict(rel) == ["a"] * 10


def test_attention_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        AttentionImputer().predict(fd_relation())


def test_gbm_learns_fd_partner():
    rel = fd_relation(600)
    noisy, truth = hide(rel, "target", 0.2)
    imp = GradientBoostedImputer(n_rounds=60).fit(noisy, "target")
    preds = imp.predict(noisy)
    correct = sum(1 for i, t in truth.items() if preds[i] == t)
    assert correct / len(truth) > 0.9


def test_gbm_beats_mode_on_predictable_target():
    rel = fd_relation(600)
    noisy, truth = hide(rel, "target", 0.2)
    gbm = GradientBoostedImputer(n_rounds=40).fit(noisy, "target")
    mode = ModeImputer().fit(noisy, "target")
    g = sum(1 for i, t in truth.items() if gbm.predict(noisy)[i] == t)
    m = sum(1 for i, t in truth.items() if mode.predict(noisy)[i] == t)
    assert g > m


def test_gbm_handles_all_missing_target():
    rel = Relation.from_rows(["a", "t"], [(1, MISSING), (2, MISSING)])
    imp = GradientBoostedImputer().fit(rel, "t")
    assert imp.predict(rel) == [MISSING, MISSING]


def test_gbm_scores_shape():
    rel = fd_relation(100)
    imp = GradientBoostedImputer(n_rounds=5).fit(rel, "target")
    scores = imp.predict_scores(rel)
    assert scores.shape == (100, 4)


def test_imputation_f1_perfect_and_zero():
    assert imputation_f1(["a", "b"], ["a", "b"]) == 1.0
    assert imputation_f1(["a", "a"], ["b", "b"]) == 0.0


def test_imputation_f1_skips_missing_truth():
    assert imputation_f1([MISSING, "a"], ["x", "a"]) == 1.0
    assert imputation_f1([], []) == 0.0


def test_imputation_f1_weighted_by_support():
    # 3 of class a (all right), 1 of class b (wrong): weighted F1 > 0.5.
    score = imputation_f1(["a", "a", "a", "b"], ["a", "a", "a", "a"])
    assert 0.5 < score < 1.0
