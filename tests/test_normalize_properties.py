"""Property-based tests (hypothesis) for the normalization theory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FD
from repro.normalize.closure import (
    attribute_closure,
    candidate_keys,
    canonical_cover,
    equivalent,
    implies,
    is_superkey,
)
from repro.normalize.decompose import (
    bcnf_decompose,
    is_lossless,
    preserves_dependencies,
    synthesize_3nf,
)

ATTRS = ["A", "B", "C", "D", "E"]


@st.composite
def fd_sets(draw):
    n = draw(st.integers(0, 6))
    fds = []
    for _ in range(n):
        lhs = draw(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3))
        rhs = draw(st.sampled_from(ATTRS))
        if rhs in lhs:
            continue
        fds.append(FD(lhs, rhs))
    return fds


@given(fd_sets(), st.sets(st.sampled_from(ATTRS), min_size=1))
def test_closure_is_extensive_and_monotone(fds, attrs):
    closure = attribute_closure(attrs, fds)
    assert set(attrs) <= closure  # extensive
    bigger = attribute_closure(closure, fds)
    assert bigger == closure  # idempotent


@given(fd_sets(), st.sets(st.sampled_from(ATTRS), min_size=1),
       st.sets(st.sampled_from(ATTRS), min_size=1))
def test_closure_monotone_in_attributes(fds, a, b):
    small = attribute_closure(a, fds)
    big = attribute_closure(a | b, fds)
    assert small <= big


@given(fd_sets())
def test_every_input_fd_is_implied_by_itself(fds):
    for fd in fds:
        assert implies(fds, fd)


@settings(max_examples=50, deadline=None)
@given(fd_sets())
def test_canonical_cover_is_equivalent(fds):
    cover = canonical_cover(fds)
    assert equivalent(cover, fds)
    assert len(cover) <= len(set(fds))


@settings(max_examples=40, deadline=None)
@given(fd_sets())
def test_candidate_keys_are_minimal_superkeys(fds):
    keys = candidate_keys(ATTRS, fds)
    assert keys, "every schema has at least one key"
    for key in keys:
        assert is_superkey(key, ATTRS, fds)
        for a in key:
            assert not is_superkey(key - {a}, ATTRS, fds)


@settings(max_examples=30, deadline=None)
@given(fd_sets())
def test_3nf_synthesis_invariants(fds):
    dec = synthesize_3nf(ATTRS, fds)
    assert set().union(*dec.fragments) == set(ATTRS)
    assert is_lossless(ATTRS, fds, dec.fragments)
    assert preserves_dependencies(fds, dec.fragments)


@settings(max_examples=25, deadline=None)
@given(fd_sets())
def test_bcnf_decomposition_invariants(fds):
    dec = bcnf_decompose(ATTRS, fds)
    assert set().union(*dec.fragments) == set(ATTRS)
    assert is_lossless(ATTRS, fds, dec.fragments)
