"""Tests for repro.constraints.cfd (conditional FDs)."""

import numpy as np
import pytest

from repro.constraints.cfd import CfdDiscovery, ConstantCFD, VariableCFD
from repro.core.fd import FD
from repro.dataset.relation import MISSING, Relation


def conditional_relation(n=600, seed=0):
    """city -> state holds ONLY for region='north' cities; 'south' cities
    span two states (so the global FD fails)."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        region = "north" if rng.random() < 0.5 else "south"
        if region == "north":
            city = f"ncity_{int(rng.integers(3))}"
            state = "NS"  # all northern cities share one state
        else:
            city = "scity"
            state = f"SS{int(rng.integers(2))}"  # same city, two states
        rows.append((region, city, state))
    return Relation.from_rows(["region", "city", "state"], rows)


def test_constant_cfd_found():
    rel = conditional_relation()
    rules = CfdDiscovery(min_support=20).discover_constant(rel)
    # region=north determines state=NS with confidence 1.
    assert any(
        r.lhs == (("region", "north"),) and r.rhs == ("state", "NS")
        for r in rules
    )


def test_constant_cfd_confidence_respected():
    rel = conditional_relation()
    rules = CfdDiscovery(min_support=10, min_confidence=0.99).discover_constant(rel)
    assert all(r.confidence >= 0.99 for r in rules)
    # 'scity' maps to two states ~50/50: no such rule.
    assert not any(
        r.lhs == (("city", "scity"),) and r.rhs[0] == "state" for r in rules
    )


def test_constant_cfd_support_respected():
    rel = conditional_relation(100)
    rules = CfdDiscovery(min_support=30).discover_constant(rel)
    assert all(r.support >= 30 for r in rules)


def test_constant_cfd_minimality():
    rel = conditional_relation()
    rules = CfdDiscovery(min_support=15, max_lhs_size=2).discover_constant(rel)
    for rule in rules:
        for other in rules:
            if other.rhs == rule.rhs and other is not rule:
                assert not set(other.lhs) < set(rule.lhs)


def test_variable_cfd_pattern_tableau():
    rel = conditional_relation()
    cfds = CfdDiscovery(min_support=10, min_coverage=0.2).discover_variable(
        rel, candidates=[FD(["city"], "state")]
    )
    assert len(cfds) == 1
    cfd = cfds[0]
    # Patterns are exactly the northern cities (the consistent groups).
    pattern_values = {p[0] for p in cfd.patterns}
    assert all(v.startswith("ncity") for v in pattern_values)
    assert 0.3 <= cfd.coverage <= 0.7


def test_variable_cfd_not_emitted_for_global_fd():
    """A dependency holding globally is an FD, not a *conditional* FD."""
    rng = np.random.default_rng(1)
    rows = [(int(z), f"c{int(z) % 3}") for z in rng.integers(6, size=300)]
    rel = Relation.from_rows(["zip", "city"], rows)
    cfds = CfdDiscovery(min_support=5).discover_variable(
        rel, candidates=[FD(["zip"], "city")]
    )
    assert cfds == []


def test_variable_cfd_ignores_rare_patterns():
    rel = conditional_relation(100)
    cfds = CfdDiscovery(min_support=500).discover_variable(
        rel, candidates=[FD(["city"], "state")]
    )
    assert cfds == []


def test_discover_combines_both():
    rel = conditional_relation()
    result = CfdDiscovery(min_support=15).discover(rel)
    assert result.constant_cfds
    assert isinstance(result.variable_cfds, list)
    assert result.seconds > 0


def test_missing_values_excluded():
    rows = [(MISSING, "x")] * 30 + [("a", "x")] * 30
    rel = Relation.from_rows(["k", "v"], rows)
    rules = CfdDiscovery(min_support=10).discover_constant(rel)
    assert not any(any(is_none for _, is_none in [(a, v is None) for a, v in r.lhs])
                   for r in rules)


def test_invalid_params():
    with pytest.raises(ValueError):
        CfdDiscovery(min_support=0)
    with pytest.raises(ValueError):
        CfdDiscovery(min_confidence=0.0)


def test_str_renderings():
    rule = ConstantCFD(lhs=(("a", 1),), rhs=("b", 2), support=10, confidence=1.0)
    assert "a=1" in str(rule)
    cfd = VariableCFD(fd=FD(["a"], "b"), patterns=((1,),), coverage=0.5)
    assert "1 patterns" in str(cfd)
