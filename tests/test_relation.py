"""Tests for repro.dataset.relation."""

import numpy as np
import pytest

from repro.dataset.relation import MISSING, Relation, concat_rows, is_missing
from repro.dataset.schema import Schema


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["city", "zip"],
        [("a", 1), ("a", 1), ("b", 2), ("c", MISSING)],
    )


def test_is_missing_none_and_nan():
    assert is_missing(None)
    assert is_missing(float("nan"))
    assert not is_missing(0)
    assert not is_missing("")


def test_shape_and_len(rel):
    assert rel.shape == (4, 2)
    assert len(rel) == 4
    assert rel.n_attributes == 2


def test_from_rows_arity_mismatch():
    with pytest.raises(ValueError, match="arity"):
        Relation.from_rows(["a", "b"], [(1,)])


def test_columns_must_match_schema():
    with pytest.raises(ValueError, match="columns do not match"):
        Relation(Schema(["a"]), {"b": [1]})


def test_ragged_columns_rejected():
    with pytest.raises(ValueError, match="ragged"):
        Relation(Schema(["a", "b"]), {"a": [1, 2], "b": [1]})


def test_column_returns_copy(rel):
    col = rel.column("city")
    col[0] = "mutated"
    assert rel.column("city")[0] == "a"


def test_row_and_rows(rel):
    assert rel.row(0) == ("a", 1)
    assert list(rel.rows())[2] == ("b", 2)


def test_missing_normalized_to_none():
    r = Relation.from_rows(["x"], [(float("nan"),), (None,)])
    assert r.column("x")[0] is MISSING
    assert r.column("x")[1] is MISSING


def test_project(rel):
    p = rel.project(["zip"])
    assert p.schema.names == ["zip"]
    assert p.n_rows == 4


def test_select_rows_and_head(rel):
    sel = rel.select_rows([2, 0])
    assert sel.row(0) == ("b", 2)
    assert rel.head(2).n_rows == 2


def test_sample_rows_without_replacement(rel):
    s = rel.sample_rows(3, np.random.default_rng(0))
    assert s.n_rows == 3


def test_sample_rows_caps_at_n(rel):
    s = rel.sample_rows(100, np.random.default_rng(0))
    assert s.n_rows == 4


def test_shuffled_is_permutation(rel):
    s = rel.shuffled(np.random.default_rng(0))
    assert sorted(map(repr, s.rows())) == sorted(map(repr, rel.rows()))


def test_map_column_skips_missing(rel):
    r = rel.map_column("zip", lambda v: v * 10)
    assert r.column("zip")[0] == 10
    assert r.column("zip")[3] is MISSING


def test_with_column(rel):
    r = rel.with_column("city", ["x", "y", "z", "w"])
    assert r.column("city")[0] == "x"
    with pytest.raises(KeyError):
        rel.with_column("nope", [1, 2, 3, 4])


def test_domain_and_counts(rel):
    assert rel.domain("city") == ["a", "b", "c"]
    assert rel.domain_size("zip") == 2
    assert rel.value_counts("city") == {"a": 2, "b": 1, "c": 1}


def test_missing_count_and_fraction(rel):
    assert rel.missing_count() == 1
    assert rel.missing_count("zip") == 1
    assert rel.missing_count("city") == 0
    assert rel.missing_fraction() == pytest.approx(1 / 8)


def test_to_matrix(rel):
    m = rel.to_matrix()
    assert m.shape == (4, 2)
    assert m[0, 0] == "a"


def test_equality(rel):
    other = Relation.from_rows(
        ["city", "zip"], [("a", 1), ("a", 1), ("b", 2), ("c", MISSING)]
    )
    assert rel == other
    assert rel != other.project(["city"])


def test_concat_rows(rel):
    combined = concat_rows([rel, rel])
    assert combined.n_rows == 8


def test_concat_rows_schema_mismatch(rel):
    with pytest.raises(ValueError, match="schemas differ"):
        concat_rows([rel, rel.project(["city"])])


def test_concat_rows_empty():
    with pytest.raises(ValueError):
        concat_rows([])


def test_empty_relation():
    r = Relation.from_rows(["a"], [])
    assert r.n_rows == 0
    assert r.missing_fraction() == 0.0
