"""Tests for repro.linalg.neighborhood (Meinshausen-Buehlmann selection)."""

import numpy as np
import pytest

from repro.linalg.covariance import empirical_covariance
from repro.linalg.neighborhood import neighborhood_selection


def chain_data(n=4000, seed=0):
    """x0 -> x1 -> x2, x3 independent."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=n)
    x1 = 0.9 * x0 + 0.3 * rng.normal(size=n)
    x2 = 0.9 * x1 + 0.3 * rng.normal(size=n)
    x3 = rng.normal(size=n)
    return np.stack([x0, x1, x2, x3], axis=1)


def test_recovers_chain_support():
    S = empirical_covariance(chain_data())
    result = neighborhood_selection(S, lam=0.1)
    assert result.support[0, 1] and result.support[1, 2]
    assert not result.support[0, 2]  # conditional independence given x1
    assert not result.support[:, 3].any()


def test_support_symmetric_and_hollow():
    S = empirical_covariance(chain_data())
    result = neighborhood_selection(S, lam=0.1)
    assert np.array_equal(result.support, result.support.T)
    assert not result.support.diagonal().any()


def test_and_rule_is_subset_of_or_rule():
    S = empirical_covariance(chain_data(800, seed=1))
    or_rule = neighborhood_selection(S, lam=0.05, rule="or")
    and_rule = neighborhood_selection(S, lam=0.05, rule="and")
    assert np.all(~or_rule.support | (and_rule.support <= or_rule.support))
    assert and_rule.support.sum() <= or_rule.support.sum()


def test_large_penalty_empty_graph():
    S = empirical_covariance(chain_data())
    result = neighborhood_selection(S, lam=10.0)
    assert not result.support.any()


def test_precision_diagonal_positive():
    S = empirical_covariance(chain_data())
    result = neighborhood_selection(S, lam=0.1)
    assert np.all(np.diag(result.precision) > 0)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        neighborhood_selection(np.eye(3), 0.1, rule="xor")
    with pytest.raises(ValueError):
        neighborhood_selection(np.zeros((2, 3)), 0.1)


def test_fdx_with_neighborhood_estimator():
    """The estimator plugs into the full FDX pipeline."""
    from repro.core.fd import FD
    from repro.core.fdx import FDX
    from repro.dataset.relation import Relation

    rng = np.random.default_rng(2)
    rows = []
    for _ in range(600):
        a = int(rng.integers(12))
        rows.append((a, a % 4, int(rng.integers(5))))
    rel = Relation.from_rows(["a", "b", "c"], rows)
    result = FDX(estimator="neighborhood").discover(rel)
    assert FD(["a"], "b") in result.fds


def test_unknown_estimator_rejected():
    from repro.core.structure import learn_structure

    with pytest.raises(ValueError, match="unknown estimator"):
        learn_structure(np.random.default_rng(0).normal(size=(50, 3)),
                        estimator="bogus")
