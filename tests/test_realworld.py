"""Tests for repro.datagen.realworld and tictactoe."""

import numpy as np
import pytest

from repro.baselines.partitions import Partition, column_codes, fd_error_g3
from repro.datagen.realworld import (
    REAL_WORLD_DATASETS,
    australian,
    hospital,
    load_dataset,
    mammographic,
    nypd,
    thoracic,
    tictactoe_dataset,
)
from repro.datagen.tictactoe import tictactoe


@pytest.mark.parametrize(
    "name,rows,attrs",
    [
        ("australian", 690, 15),
        ("hospital", 1000, 17),
        ("mammographic", 830, 6),
        ("thoracic", 470, 17),
        ("tic-tac-toe", 958, 10),
    ],
)
def test_table3_shapes(name, rows, attrs):
    ds = load_dataset(name)
    assert ds.relation.shape == (rows, attrs)


def test_nypd_shape_parameterized():
    ds = nypd(n_rows=1500)
    assert ds.relation.shape == (1500, 17)


def test_registry_complete():
    assert set(REAL_WORLD_DATASETS) == {
        "australian", "hospital", "mammographic", "nypd", "thoracic", "tic-tac-toe",
    }


def test_load_dataset_unknown():
    with pytest.raises(ValueError, match="unknown dataset"):
        load_dataset("bogus")


def test_generators_deterministic():
    a = hospital(seed=3).relation
    b = hospital(seed=3).relation
    assert a == b


def test_hospital_embedded_fds_hold_modulo_missing():
    ds = hospital(missing_rate=0.0)
    for fd in ds.embedded_fds:
        part = Partition.for_attributes(ds.relation, fd.lhs)
        err = fd_error_g3(part, column_codes(ds.relation, fd.rhs))
        assert err == 0.0, str(fd)


def test_hospital_state_skew():
    """One state dominates ~89% of rows (paper §5.4)."""
    ds = hospital(missing_rate=0.0)
    counts = ds.relation.value_counts("State")
    top = max(counts.values()) / ds.relation.n_rows
    assert 0.75 <= top <= 0.98


def test_hospital_stateavg_is_concatenation():
    ds = hospital(missing_rate=0.0)
    state = ds.relation.column("State")
    code = ds.relation.column("MeasureCode")
    avg = ds.relation.column("Stateavg")
    for i in range(50):
        assert avg[i] == f"{state[i]}_{code[i]}"


def test_missing_values_present():
    ds = hospital(missing_rate=0.05)
    assert ds.relation.missing_fraction() == pytest.approx(0.05, abs=0.01)


def test_nypd_embedded_fds_hold_modulo_missing():
    ds = nypd(n_rows=2000, missing_rate=0.0)
    for fd in ds.embedded_fds:
        part = Partition.for_attributes(ds.relation, fd.lhs)
        err = fd_error_g3(part, column_codes(ds.relation, fd.rhs))
        assert err == 0.0, str(fd)


def test_australian_a8_determines_a15_softly():
    ds = australian(missing_rate=0.0)
    part = Partition.for_attributes(ds.relation, ["A8"])
    err = fd_error_g3(part, column_codes(ds.relation, "A15"))
    assert err < 0.1


def test_australian_target_recorded():
    assert australian().target == "A15"
    assert mammographic().target == "severity"
    assert thoracic().target == "Risk1Yr"


def test_mammographic_chain():
    ds = mammographic(missing_rate=0.0)
    part = Partition.for_attributes(ds.relation, ["shape", "margin"])
    err = fd_error_g3(part, column_codes(ds.relation, "severity"))
    assert err < 0.12
    part = Partition.for_attributes(ds.relation, ["severity"])
    err = fd_error_g3(part, column_codes(ds.relation, "rads"))
    assert err < 0.15


def test_fd_attributes_property():
    ds = mammographic()
    assert {"shape", "margin", "severity", "rads"} <= ds.fd_attributes


# --- tic-tac-toe ---------------------------------------------------------

def test_tictactoe_exact_counts():
    rel = tictactoe()
    assert rel.shape == (958, 10)
    counts = rel.value_counts("class")
    assert counts == {"positive": 626, "negative": 332}


def test_tictactoe_rows_unique():
    rel = tictactoe()
    assert len({r for r in rel.rows()}) == 958


def test_tictactoe_board_values():
    rel = tictactoe()
    for name in rel.schema.names[:9]:
        assert set(rel.domain(name)) <= {"x", "o", "b"}


def test_tictactoe_class_is_function_of_board():
    ds = tictactoe_dataset()
    fd = ds.embedded_fds[0]
    part = Partition.for_attributes(ds.relation, fd.lhs)
    assert fd_error_g3(part, column_codes(ds.relation, "class")) == 0.0


def test_tictactoe_missing_rate_option():
    ds = tictactoe_dataset(missing_rate=0.05)
    assert ds.relation.missing_count() > 0
