"""Tests for repro.metrics.information."""

import numpy as np
import pytest

from repro.dataset.relation import MISSING, Relation
from repro.metrics.information import (
    conditional_entropy,
    contingency,
    entropy,
    entropy_from_counts,
    expected_mutual_information,
    fraction_of_information,
    mutual_information,
    mutual_information_from_table,
    reliable_fraction_of_information,
)


def fd_rel(n=200, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = int(rng.integers(8))
        rows.append((a, a % 4, int(rng.integers(3))))
    return Relation.from_rows(["a", "b", "z"], rows)


def test_entropy_from_counts_uniform():
    assert entropy_from_counts(np.array([1, 1, 1, 1])) == pytest.approx(np.log(4))
    assert entropy_from_counts(np.array([10, 0, 0])) == 0.0
    assert entropy_from_counts(np.array([0, 0])) == 0.0


def test_entropy_of_constant_column():
    rel = Relation.from_rows(["x"], [("c",)] * 10)
    assert entropy(rel, "x") == 0.0


def test_joint_entropy_at_least_marginal():
    rel = fd_rel()
    assert entropy(rel, ["a", "z"]) >= entropy(rel, "a") - 1e-12
    assert entropy(rel, ["a", "z"]) >= entropy(rel, "z") - 1e-12


def test_entropy_missing_treated_as_value():
    rel = Relation.from_rows(["x"], [("a",), (MISSING,), ("a",), (MISSING,)])
    assert entropy(rel, "x") == pytest.approx(np.log(2))


def test_contingency_margins():
    rel = fd_rel(100)
    table = contingency(rel, ["a"], "b")
    assert table.sum() == 100
    assert table.shape[0] == rel.domain_size("a")


def test_mutual_information_functional_pair():
    rel = fd_rel()
    # b = f(a): I(a; b) == H(b)
    assert mutual_information(rel, ["a"], "b") == pytest.approx(entropy(rel, "b"), abs=1e-9)


def test_mutual_information_independent_pair_small():
    rel = fd_rel(2000)
    assert mutual_information(rel, ["z"], "b") < 0.02


def test_mi_from_table_matches_definition():
    table = np.array([[20, 0], [0, 20]])
    assert mutual_information_from_table(table) == pytest.approx(np.log(2))


def test_conditional_entropy_zero_for_fd():
    rel = fd_rel()
    assert conditional_entropy(rel, "b", ["a"]) == pytest.approx(0.0, abs=1e-9)


def test_fraction_of_information_bounds_and_extremes():
    rel = fd_rel()
    assert fraction_of_information(rel, ["a"], "b") == pytest.approx(1.0)
    assert fraction_of_information(rel, ["z"], "b") < 0.1
    const = Relation.from_rows(["x", "y"], [("a", "c")] * 5)
    assert fraction_of_information(const, ["x"], "y") == 1.0  # H(y) == 0


def test_expected_mi_zero_table():
    assert expected_mutual_information(np.zeros((2, 2), dtype=int)) == 0.0


def test_expected_mi_positive_and_below_max():
    table = np.array([[5, 3], [2, 10]])
    emi = expected_mutual_information(table)
    assert 0.0 < emi < np.log(2)


def test_expected_mi_monte_carlo_close_to_exact():
    rng = np.random.default_rng(0)
    table = rng.integers(1, 10, size=(4, 3))
    exact = expected_mutual_information(table)
    from repro.metrics.information import _monte_carlo_emi

    a, b, n = table.sum(axis=1), table.sum(axis=0), int(table.sum())
    mc = _monte_carlo_emi(a, b, n, np.random.default_rng(1), 300)
    assert mc == pytest.approx(exact, abs=0.02)


def test_rfi_discounts_unique_key():
    """A row-unique key has FI == 1 but RFI ~ 0 (pure overfitting)."""
    rng = np.random.default_rng(1)
    rows = [(i, int(rng.integers(3))) for i in range(200)]
    rel = Relation.from_rows(["key", "y"], rows)
    assert fraction_of_information(rel, ["key"], "y") == pytest.approx(1.0)
    assert reliable_fraction_of_information(rel, ["key"], "y") < 0.25


def test_rfi_high_for_true_fd():
    rel = fd_rel(500)
    assert reliable_fraction_of_information(rel, ["a"], "b") > 0.9


def test_rfi_zero_for_constant_target():
    rel = Relation.from_rows(["x", "y"], [(i % 3, "c") for i in range(30)])
    assert reliable_fraction_of_information(rel, ["x"], "y") == 0.0
