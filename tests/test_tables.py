"""Tests for repro.experiments.tables (reduced-scale smoke runs)."""

import pytest

from repro.experiments.report import Table
from repro.experiments.tables import (
    NETWORK_ORDER,
    known_structure_runs,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table8,
    table9,
)


def test_table1_matches_registry():
    t = table1()
    assert [row[0] for row in t.rows] == [n.capitalize() for n in NETWORK_ORDER]
    attrs = dict(zip(t.column("Data set"), t.column("Attributes")))
    assert attrs["Alarm"] == 37
    assert attrs["Asia"] == 8


def test_table2_static_content():
    t = table2()
    assert t.column("Property")[0] == "Noise Rate (n)"
    assert "100000" in str(t.column("Large/High")[1])


def test_table3_row_counts():
    t = table3(nypd_rows=500)
    tuples = dict(zip(t.column("Data set"), t.column("Tuples")))
    assert tuples["australian"] == 690
    assert tuples["nypd"] == 500


@pytest.fixture(scope="module")
def tiny_runs():
    return known_structure_runs(
        n_rows=400,
        time_limit=20.0,
        methods=("FDX", "CORDS"),
        networks=("cancer", "earthquake"),
    )


def test_known_structure_runs_structure(tiny_runs):
    assert set(tiny_runs) == {"cancer", "earthquake"}
    for per_method in tiny_runs.values():
        assert set(per_method) == {"FDX", "CORDS"}
        for outcome, prf in per_method.values():
            assert 0.0 <= prf.precision <= 1.0
            assert 0.0 <= prf.recall <= 1.0


def test_table4_renders_from_runs(tiny_runs):
    t = table4(tiny_runs)
    assert isinstance(t, Table)
    # 2 networks x 3 metric rows.
    assert len(t.rows) == 6
    metrics = t.column("Metric")
    assert metrics == ["P", "R", "F1"] * 2


def test_table5_renders_from_runs(tiny_runs):
    t = table5(tiny_runs)
    assert len(t.rows) == 2
    fdx_times = t.column("FDX")
    assert all(isinstance(v, float) for v in fdx_times)


def test_table6_reduced():
    t = table6(
        datasets=("mammographic",),
        methods=("FDX", "CORDS"),
        time_limit=30.0,
    )
    assert len(t.rows) == 2  # time + #FDs
    assert t.rows[0][1] == "time (sec)"
    assert t.rows[1][1] == "# of FDs"
    n_fdx = t.rows[1][2]
    assert isinstance(n_fdx, int) and n_fdx <= 6


def test_table8_sparsity_sweep_reduced():
    t = table8(n_rows=400, networks=("cancer",), grid=(0.0, 0.2))
    assert len(t.rows) == 4  # P/R/F1/#FDs for one network
    nfds_row = t.rows[3]
    assert nfds_row[2] >= nfds_row[3]  # FDs shrink as sparsity grows


def test_lambda_sensitivity_reduced():
    from repro.experiments.tables import lambda_sensitivity

    t = lambda_sensitivity(n_rows=400, networks=("cancer",), grid=(0.01, 0.1))
    assert len(t.rows) == 3
    assert t.headers[2:] == ["0.01", "0.1"]
    f1_row = next(row for row in t.rows if row[1] == "F1")
    assert all(0.0 <= v <= 1.0 for v in f1_row[2:])


def test_table9_ordering_sweep_reduced():
    t = table9(n_rows=400, networks=("cancer",), orderings=("mindegree", "natural"))
    assert t.headers[2] == "heuristic"  # paper's label for mindegree
    assert len(t.rows) == 3
