"""Explain endpoints and solver-health readiness over a live service.

Exercises ``GET /v1/jobs/<id>/explain`` and ``GET
/v1/sessions/<id>/explain`` (full ledger, ``?fd=`` single-record lookup,
and every error path), the checkpoint-restore contract (a restored
session answers explain without re-solving), and the ``/v1/statusz``
solver section flipping readiness under injected
``glasso.nonconverge`` faults.
"""

import numpy as np
import pytest

from repro.dataset.relation import Relation
from repro.resilience import FaultInjector
from repro.service import ServiceClient, ServiceError, start_in_thread

pytestmark = pytest.mark.tier2


def explain_relation(seed=0, n=300):
    """zip -> city holds exactly; noise stays independent."""
    rng = np.random.default_rng(seed)
    zips = rng.integers(0, 15, size=n)
    return Relation.from_arrays(
        ["zip", "city", "noise"],
        [
            np.array([str(v) for v in zips]),
            np.array([str(v % 6) for v in zips]),
            np.array([str(v) for v in rng.integers(0, 4, size=n)]),
        ],
    )


@pytest.fixture
def handle():
    with start_in_thread(workers=2) as h:
        ServiceClient(h.base_url).wait_until_healthy()
        yield h


@pytest.fixture
def client(handle):
    return ServiceClient(handle.base_url, timeout=30.0)


class TestJobExplain:
    def test_full_ledger_and_single_record(self, client):
        job_id = client.submit(explain_relation())
        client.wait_for_job(job_id)
        body = client.explain(job_id=job_id)
        assert body["job_id"] == job_id
        records = body["evidence"]["records"]
        assert any(r["fd"] == "zip->city" for r in records)
        single = client.explain(job_id=job_id, fd="zip->city")
        assert single["record"]["margin"] > 0
        assert single["record"]["edges"][0]["attribute"] == "zip"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.explain(job_id="nope")
        assert exc.value.status == 404

    def test_unemitted_fd_is_404(self, client):
        job_id = client.submit(explain_relation())
        client.wait_for_job(job_id)
        with pytest.raises(ServiceError) as exc:
            client.explain(job_id=job_id, fd="noise->zip")
        assert exc.value.status == 404
        assert "near-misses" in str(exc.value)

    def test_client_requires_exactly_one_scope(self, client):
        with pytest.raises(ValueError):
            client.explain()
        with pytest.raises(ValueError):
            client.explain(job_id="a", session_id="b")


class TestSessionExplain:
    def test_before_first_refresh_is_409(self, client):
        sid = client.create_session()
        with pytest.raises(ServiceError) as exc:
            client.explain(session_id=sid)
        assert exc.value.status == 409

    def test_annotated_with_streaks_and_drift(self, client):
        sid = client.create_session({"min_batch_rows": 2})
        client.append_batch(sid, explain_relation())
        client.session_fds(sid, force=True)
        client.append_batch(sid, explain_relation(seed=1))
        client.session_fds(sid, force=True)
        body = client.explain(session_id=sid, fd="city")
        assert body["record"]["fd"] == "zip->city"
        assert body["record"]["stability_streak"] >= 2
        assert "drift_score" in body["evidence"]

    def test_restored_session_explains_without_a_resolve(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        with start_in_thread(workers=2, checkpoint_dir=directory) as handle:
            client = ServiceClient(handle.base_url, timeout=30.0)
            client.wait_until_healthy()
            sid = client.create_session({"min_batch_rows": 2})
            client.append_batch(sid, explain_relation())
            client.session_fds(sid, force=True)
            before = client.explain(session_id=sid)["evidence"]
            client.checkpoint_session(sid)
        with start_in_thread(workers=2, checkpoint_dir=directory) as handle:
            client = ServiceClient(handle.base_url, timeout=30.0)
            client.wait_until_healthy()
            assert handle.service.sessions.stats()["restored"] == 1
            after = client.explain(session_id=sid)["evidence"]
            assert after == before
            # The answer came from the persisted ledger: the restarted
            # server has not run a single discovery.
            assert (
                handle.service.registry.counter("fdx_discoveries_total").value
                == 0
            )


class TestSolverReadiness:
    def test_nonconvergence_degrades_statusz(self, handle, client):
        assert client.statusz()["checks"]["solver"] == "ok"
        with FaultInjector(seed=3).inject(
            "glasso.nonconverge", times=None
        ).install():
            client.discover(explain_relation(seed=7))
            client.discover(explain_relation(seed=8))
        status = client.statusz()
        assert status["status"] == "degraded"
        assert status["checks"]["solver"] == "nonconverging"
        solver = status["solver"]
        assert solver["recent_nonconverged"] >= 2
        assert (
            solver["recent_nonconverged_ratio"]
            >= solver["nonconverge_threshold"]
        )
        # The injected runs also fired a solver flight trigger.
        reasons = {
            e["data"].get("reason")
            for e in handle.service.flight.events()
            if e.get("kind") == "trigger"
        }
        assert "solver.nonconverge" in reasons

    def test_healthy_discoveries_restore_readiness(self, handle, client):
        with FaultInjector(seed=3).inject(
            "glasso.nonconverge", times=None
        ).install():
            client.discover(explain_relation(seed=7))
            client.discover(explain_relation(seed=8))
        assert client.statusz()["checks"]["solver"] != "ok"
        # window=32 recent runs: flush the bad ones out with good ones.
        for seed in range(20, 56):
            client.discover(explain_relation(seed=seed, n=120))
        assert client.statusz()["checks"]["solver"] == "ok"

    def test_prometheus_carries_solver_series(self, client):
        client.discover(explain_relation())
        text = client.metrics_prometheus()
        assert "# HELP solver_runs_total" in text
        assert "# TYPE solver_condition_number histogram" in text
        assert "# HELP solver_recent_nonconverged_ratio" in text
        assert 'solver_runs_total{estimator="glasso",status="converged"}' in text


class TestFlightStatusz:
    def test_last_dump_path_and_reason_surface(self, tmp_path):
        with start_in_thread(
            workers=2, flight_dir=str(tmp_path / "flight")
        ) as handle:
            client = ServiceClient(handle.base_url, timeout=30.0)
            client.wait_until_healthy()
            flight = client.statusz()["flight"]
            assert flight["last_dump_path"] is None
            assert flight["last_dump_reason"] is None
            path = handle.service.flight.trigger("worker_crash", job_id="j1")
            flight = client.statusz()["flight"]
            assert flight["last_dump_path"] == path
            assert flight["last_dump_reason"] == "worker_crash"
