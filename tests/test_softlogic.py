"""Tests for repro.core.softlogic (the Equation 2 -> 3 bridge)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.softlogic import (
    equation2_satisfaction,
    fd_linear_response,
    soft_and,
    soft_conjunction,
    soft_not,
    soft_or,
)

unit = st.floats(0.0, 1.0)


def test_boolean_vertices_and():
    assert soft_and(1.0, 1.0) == 1.0
    assert soft_and(1.0, 0.0) == 0.0
    assert soft_and(0.0, 0.0) == 0.0


def test_boolean_vertices_or():
    assert soft_or(0.0, 0.0) == 0.0
    assert soft_or(1.0, 0.0) == 1.0
    assert soft_or(1.0, 1.0) == 1.0


def test_not_involution():
    assert soft_not(soft_not(0.3)) == pytest.approx(0.3)


@given(unit, unit)
def test_and_bounds(a, b):
    v = float(soft_and(a, b))
    assert 0.0 <= v <= min(a, b) + 1e-9


@given(unit, unit)
def test_de_morgan(a, b):
    lhs = float(soft_not(soft_and(a, b)))
    rhs = float(soft_or(soft_not(a), soft_not(b)))
    assert lhs == pytest.approx(rhs, abs=1e-9)


@given(unit, unit)
def test_or_commutative(a, b):
    assert float(soft_or(a, b)) == pytest.approx(float(soft_or(b, a)))


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        soft_and(1.5, 0.2)
    with pytest.raises(ValueError):
        soft_not(-0.1)


def test_conjunction_is_mean():
    vals = [np.array([1.0, 0.0]), np.array([1.0, 1.0]), np.array([0.0, 1.0])]
    out = soft_conjunction(vals)
    assert np.allclose(out, [2 / 3, 2 / 3])


def test_conjunction_empty_rejected():
    with pytest.raises(ValueError):
        soft_conjunction([])


def test_fd_linear_response_matches_equation3():
    """The response equals B-column weights 1/|X| applied to agreements."""
    agreements = np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
    out = fd_linear_response(agreements)
    assert np.allclose(out, agreements.mean(axis=1))


def test_fd_linear_response_rejects_1d():
    with pytest.raises(ValueError):
        fd_linear_response(np.array([1.0, 0.0]))


def test_equation2_satisfaction_on_fd_data():
    """On data with a real FD, conditional agreement probability is ~1."""
    rng = np.random.default_rng(0)
    x = rng.integers(5, size=4000)
    y = x % 3
    i, j = rng.integers(4000, size=2000), rng.integers(4000, size=2000)
    lhs_agree = (x[i] == x[j]).astype(float)
    rhs_agree = (y[i] == y[j]).astype(float)
    assert equation2_satisfaction(lhs_agree, rhs_agree) == 1.0


def test_equation2_vacuous_condition():
    assert equation2_satisfaction(np.zeros(10), np.ones(10)) == 1.0


def test_equation2_detects_violations():
    lhs = np.ones(10)
    rhs = np.array([1.0] * 7 + [0.0] * 3)
    assert equation2_satisfaction(lhs, rhs) == pytest.approx(0.7)
