#!/usr/bin/env bash
# Smoke test for `python -m repro serve`: boots the real server process,
# runs one discover round trip and one streaming-session round trip via
# the Python client, checks the cache hit shows up in /v1/metrics, and
# exits nonzero on any failure. Invoked by the tier-2 pytest marker
# (tests/test_service_smoke.py) and usable standalone:
#
#   bash scripts/smoke_service.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:$PYTHONPATH}"
PYTHON="${PYTHON:-python}"

PORT="$("$PYTHON" - <<'EOF'
import socket
with socket.socket() as s:
    s.bind(("127.0.0.1", 0))
    print(s.getsockname()[1])
EOF
)"

"$PYTHON" -m repro serve --port "$PORT" --workers 2 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

"$PYTHON" - "$PORT" <<'EOF'
import sys

import numpy as np

from repro.core.fd import FD
from repro.service import ServiceClient

port = int(sys.argv[1])
client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)
client.wait_until_healthy(timeout=30.0)

from repro.dataset.relation import Relation

rng = np.random.default_rng(0)
rows = []
for _ in range(1000):
    base = int(rng.integers(20))
    rows.append(tuple([base, base % 5] + [int(rng.integers(6)) for _ in range(8)]))
relation = Relation.from_rows([f"a{i}" for i in range(10)], rows)

# One-shot discover + cache hit on the identical repeat.
result = client.discover(relation)
assert FD(["a0"], "a1") in set(result.fds), result.fds
assert client.discover_raw(relation)["cached"] is True
assert client.metrics()["counters"]["discover_cache_hits"] >= 1

# Streaming session round trip.
session = client.create_session()
for start in range(0, 1000, 250):
    client.append_batch(session, relation.select_rows(np.arange(start, start + 250)))
session_result = client.session_fds(session)
assert FD(["a0"], "a1") in set(session_result.fds), session_result.fds
client.close_session(session)

print("smoke_service: OK")
EOF
