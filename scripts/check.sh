#!/usr/bin/env bash
# One-command repo check: byte-compile everything, run the tier-1 suite,
# the tier-2 observability smoke tests (real CLI + server subprocesses),
# a fast benchmark smoke pass reported against the recorded trajectory
# (report-only: timings on shared CI hosts are too noisy to hard-gate
# here; `python -m repro bench` without --report-only gates), and the
# parallel / streaming / flight-recorder end-to-end smokes.
# Usable standalone and in CI:
#
#   bash scripts/check.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:$PYTHONPATH}"
PYTHON="${PYTHON:-python}"

echo "== compileall =="
"$PYTHON" -m compileall -q src tests benchmarks

echo "== tier-1 tests =="
"$PYTHON" -m pytest -x -q

echo "== tier-2 observability smoke =="
"$PYTHON" -m pytest -q -m tier2 tests/test_obs_smoke.py

echo "== tier-2 chaos smoke =="
"$PYTHON" -m pytest -q -m tier2 tests/test_chaos.py

echo "== bench smoke (report-only) =="
"$PYTHON" -m repro bench --suite micro --smoke --no-record --report-only
"$PYTHON" -m repro bench --suite catalog --smoke --no-record --report-only

echo "== parallel process-backend smoke =="
# Real CLI subprocess on a bundled dataset with 2 process workers; the
# diagnostics must confirm the process backend actually served the run.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$PYTHON" -m repro dataset tic-tac-toe --output "$SMOKE_DIR/ttt.csv" >/dev/null
"$PYTHON" -m repro discover "$SMOKE_DIR/ttt.csv" --workers 2 --json \
    | "$PYTHON" -c '
import json, sys
parallel = json.load(sys.stdin)["diagnostics"]["parallel"]
assert parallel["backend"] == "process", parallel
assert parallel["workers"] == 2, parallel
print(f"process backend OK: {parallel}")
'

echo "== explain smoke =="
# Every emitted FD must carry a parseable evidence record: run a real
# CLI discovery with --explain-out and verify the ledger's first record
# has a positive threshold margin and matching edge evidence.
"$PYTHON" -m repro discover "$SMOKE_DIR/ttt.csv" --sparsity 0.01 \
    --explain --explain-out "$SMOKE_DIR/evidence.json" >/dev/null
"$PYTHON" - "$SMOKE_DIR/evidence.json" <<'PY'
import json, sys
evidence = json.load(open(sys.argv[1]))
records = evidence["records"]
assert records, "discovery emitted no evidence records"
record = records[0]
assert record["margin"] > 0, record
assert record["edges"], record
assert evidence["suppressed_total"] >= len(evidence["near_misses"])
print(f"explain smoke OK: {len(records)} FDs with evidence, "
      f"first margin {record['margin']:.4g}, "
      f"{evidence['suppressed_total']} near-miss edges")
PY

echo "== catalog sweep smoke =="
# Real CLI sweep over a 3-table sqlite fixture with a shared key
# column; the written report must parse with at least one FD and one
# cross-table shared-key hint.
"$PYTHON" - "$SMOKE_DIR/catalog.sqlite" <<'PY'
import sqlite3, sys
conn = sqlite3.connect(sys.argv[1])
conn.execute("CREATE TABLE orders (order_id INT, customer_id INT, zip TEXT, city TEXT)")
conn.execute("CREATE TABLE customers (customer_id INT, name TEXT, region TEXT)")
conn.execute("CREATE TABLE items (item_id INT, amount REAL, grade TEXT)")
conn.executemany("INSERT INTO orders VALUES (?,?,?,?)",
                 [(i, i % 50, f"z{i % 20:02d}", f"c{(i % 20) % 10}")
                  for i in range(400)])
conn.executemany("INSERT INTO customers VALUES (?,?,?)",
                 [(i, f"n{i}", f"r{i % 5}") for i in range(50)])
conn.executemany("INSERT INTO items VALUES (?,?,?)",
                 [(i, (i % 13) / 2.0, f"g{i % 4}") for i in range(200)])
conn.commit(); conn.close()
PY
"$PYTHON" -m repro sweep --input "$SMOKE_DIR/catalog.sqlite" --sample 500 \
    --report "$SMOKE_DIR/catalog.json" >/dev/null
"$PYTHON" - "$SMOKE_DIR/catalog.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
totals = report["totals"]
assert totals["tables"] == 3 and totals["tables_error"] == 0, totals
assert totals["fds"] >= 1, totals
assert totals["hints"] >= 1, totals
assert any(h["kind"] in ("shared_key", "foreign_key_candidate")
           for h in report["hints"]), report["hints"]
for table in report["tables"]:
    assert table["sampling"]["standard_error"], table["table"]
print(f"catalog smoke OK: {totals['tables_ok']} tables, {totals['fds']} FDs, "
      f"{totals['hints']} cross-table hints")
PY

echo "== streaming session smoke =="
# In-process service round trip over the streaming surface: create a
# session, append, read FDs + deltas, checkpoint, then boot a second
# service over the same directory and verify the session was restored
# with its changelog intact.
"$PYTHON" - <<'PY'
import tempfile
import numpy as np
from repro.dataset.relation import Relation
from repro.service import ServiceClient, start_in_thread

rng = np.random.default_rng(0)
rows = [(a := int(rng.integers(15)), a % 5, int(rng.integers(6))) for _ in range(400)]
relation = Relation.from_rows(["a", "b", "c"], rows)

with tempfile.TemporaryDirectory() as ckpt_dir:
    with start_in_thread(workers=2, checkpoint_dir=ckpt_dir) as handle:
        client = ServiceClient(handle.base_url, timeout=60.0)
        client.wait_until_healthy()
        sid = client.create_session()
        client.append_batch(sid, relation)
        fds = client.session_fds(sid).fds
        assert fds, "no FDs discovered over the session"
        deltas = client.session_deltas(sid)
        assert deltas["version"] == 1 and deltas["deltas"][0]["added"]
        drift = client.session_drift(sid)
        assert "score" in drift
        client.checkpoint_session(sid)
    # Restart: a fresh service over the same checkpoint directory.
    with start_in_thread(workers=2, checkpoint_dir=ckpt_dir) as handle:
        client = ServiceClient(handle.base_url, timeout=60.0)
        client.wait_until_healthy()
        info = client.session_info(sid)
        assert info["n_rows_seen"] == 400, info
        restored = client.session_deltas(sid)
        assert restored["version"] == deltas["version"], restored
        refreshed = client.session_fds_raw(sid, force=True)
        assert refreshed["refresh"]["warm"] is True, refreshed["refresh"]
        print(f"streaming smoke OK: {len(fds)} FDs, "
              f"changelog v{restored['version']} survived restart, warm refresh")
PY

echo "== flight recorder smoke =="
# Boot the service with a flight-dump directory, inject one http.5xx
# fault, and verify the failure produced exactly one parseable dump
# carrying the offending request's evidence (span + log line + trigger).
"$PYTHON" - <<'PY'
import glob
import json
import os
import tempfile
import time

from repro.resilience.faults import FaultInjector
from repro.service import ServiceClient, start_in_thread
from repro.service.client import ServiceError

with tempfile.TemporaryDirectory() as flight_dir:
    with start_in_thread(workers=1, flight_dir=flight_dir) as handle:
        client = ServiceClient(handle.base_url, retry=None)
        client.wait_until_healthy()
        with FaultInjector(seed=0).inject("http.5xx", times=1).install():
            try:
                client.healthz()
                raise SystemExit("fault did not fire")
            except ServiceError as exc:
                assert exc.status == 500, exc.status
                assert exc.trace_id, "no trace id on the client error"
                trace_id = exc.trace_id
        deadline = time.monotonic() + 5.0
        dumps = []
        while time.monotonic() < deadline and not dumps:
            dumps = glob.glob(os.path.join(flight_dir, "flight-*.jsonl"))
            time.sleep(0.05)
        assert len(dumps) == 1, dumps
        lines = [json.loads(line) for line in open(dumps[0])]
        assert lines[0]["kind"] == "dump" and lines[0]["reason"] == "http.5xx"
        kinds = {line["kind"] for line in lines[1:]}
        assert {"request", "trigger", "span"} <= kinds, kinds
        assert any(l["kind"] == "trigger" and l.get("trace_id") == trace_id
                   for l in lines[1:])
        print(f"flight smoke OK: dump {os.path.basename(dumps[0])} "
              f"({lines[0]['events']} events, trace {trace_id})")
PY

echo "== crash recovery smoke =="
# Real serve subprocess with a job journal: submit slow async jobs,
# kill -9 the server mid-run, restart with --recover resubmit, and
# verify the interrupted jobs were restored from the journal and their
# work was resubmitted and completed.
"$PYTHON" - <<'PY'
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

import numpy as np


def start_server(journal_dir, *extra):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--journal-dir", journal_dir, *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"server exited early (rc={proc.poll()})")
        m = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if m:
            return proc, m.group(1)
    raise SystemExit("server never printed its address")


def request(base, path, body=None):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"} if body is not None else {},
    )
    with urllib.request.urlopen(req, timeout=30.0) as resp:
        return json.loads(resp.read())


def relation_payload(seed, n_rows):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_rows):
        base = int(rng.integers(12))
        rows.append([base, base % 4] + [int(rng.integers(5)) for _ in range(4)])
    return {"attributes": [f"a{i}" for i in range(6)], "rows": rows}


journal_dir = tempfile.mkdtemp(prefix="repro-journal-")
proc1 = proc2 = None
try:
    proc1, base = start_server(journal_dir)
    # One worker: the first job runs, the second sits in the queue —
    # both are in flight when the process dies. The first job is big
    # enough (hundreds of ms) to still be running when the kill lands;
    # the second is tiny so its submit barely delays the kill.
    ids = []
    for seed, n_rows in ((1, 20_000), (2, 400)):
        body = request(base, "/v1/discover",
                       {"relation": relation_payload(seed, n_rows), "wait": False})
        ids.append(body["job_id"])
    os.kill(proc1.pid, signal.SIGKILL)
    proc1.wait(timeout=10.0)

    proc2, base = start_server(journal_dir, "--recover", "resubmit")
    resubmitted = []
    for job_id in ids:
        job = request(base, f"/v1/jobs/{job_id}")
        assert job["state"] == "interrupted", job
        assert job.get("restored") is True, job
        assert "restart" in job["error"], job
        assert job.get("resubmitted_as"), job
        resubmitted.append(job["resubmitted_as"])
    status = request(base, "/v1/statusz")
    assert status["jobs"]["interrupted_at_boot"] == 2, status["jobs"]
    assert status["checks"]["storage"] == "ok", status["checks"]
    deadline = time.monotonic() + 120.0
    done = set()
    while time.monotonic() < deadline and len(done) < len(resubmitted):
        for new_id in resubmitted:
            job = request(base, f"/v1/jobs/{new_id}")
            if job["state"] == "done":
                done.add(new_id)
            else:
                assert job["state"] in ("queued", "running"), job
        time.sleep(0.2)
    assert len(done) == len(resubmitted), f"resubmitted jobs not done: {done}"
    print(f"crash recovery smoke OK: {len(ids)} jobs interrupted by kill -9, "
          f"resubmitted as {len(done)} completed jobs after replay")
finally:
    for proc in (proc1, proc2):
        if proc is not None and proc.poll() is None:
            proc.kill()
    import shutil
    shutil.rmtree(journal_dir, ignore_errors=True)
PY

echo "check: OK"
