#!/usr/bin/env bash
# One-command repo check: byte-compile everything, run the tier-1 suite,
# the tier-2 observability smoke tests (real CLI + server subprocesses),
# and a fast benchmark smoke pass reported against the recorded
# trajectory (report-only: timings on shared CI hosts are too noisy to
# hard-gate here; `python -m repro bench` without --report-only gates).
# Usable standalone and in CI:
#
#   bash scripts/check.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:$PYTHONPATH}"
PYTHON="${PYTHON:-python}"

echo "== compileall =="
"$PYTHON" -m compileall -q src tests benchmarks

echo "== tier-1 tests =="
"$PYTHON" -m pytest -x -q

echo "== tier-2 observability smoke =="
"$PYTHON" -m pytest -q -m tier2 tests/test_obs_smoke.py

echo "== tier-2 chaos smoke =="
"$PYTHON" -m pytest -q -m tier2 tests/test_chaos.py

echo "== bench smoke (report-only) =="
"$PYTHON" -m repro bench --suite micro --smoke --no-record --report-only

echo "== parallel process-backend smoke =="
# Real CLI subprocess on a bundled dataset with 2 process workers; the
# diagnostics must confirm the process backend actually served the run.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$PYTHON" -m repro dataset tic-tac-toe --output "$SMOKE_DIR/ttt.csv" >/dev/null
"$PYTHON" -m repro discover "$SMOKE_DIR/ttt.csv" --workers 2 --json \
    | "$PYTHON" -c '
import json, sys
parallel = json.load(sys.stdin)["diagnostics"]["parallel"]
assert parallel["backend"] == "process", parallel
assert parallel["workers"] == 2, parallel
print(f"process backend OK: {parallel}")
'

echo "check: OK"
