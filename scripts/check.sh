#!/usr/bin/env bash
# One-command repo check: byte-compile everything, run the tier-1 suite,
# the tier-2 observability smoke tests (real CLI + server subprocesses),
# and a fast benchmark smoke pass reported against the recorded
# trajectory (report-only: timings on shared CI hosts are too noisy to
# hard-gate here; `python -m repro bench` without --report-only gates).
# Usable standalone and in CI:
#
#   bash scripts/check.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:$PYTHONPATH}"
PYTHON="${PYTHON:-python}"

echo "== compileall =="
"$PYTHON" -m compileall -q src tests benchmarks

echo "== tier-1 tests =="
"$PYTHON" -m pytest -x -q

echo "== tier-2 observability smoke =="
"$PYTHON" -m pytest -q -m tier2 tests/test_obs_smoke.py

echo "== tier-2 chaos smoke =="
"$PYTHON" -m pytest -q -m tier2 tests/test_chaos.py

echo "== bench smoke (report-only) =="
"$PYTHON" -m repro bench --suite micro --smoke --no-record --report-only

echo "check: OK"
