"""Reproduce paper Tables 4-5: accuracy and runtime of every method on the
known-structure benchmarks.

Expected shape (paper §5.2): FDX has the best (or tied-best) average F1;
PYRO/TANE are recall-heavy with poor precision; RFI does not terminate on
the widest network (Alarm); FDX runs in seconds.
"""

import numpy as np
from conftest import emit

from repro.experiments.tables import known_structure_runs, table4, table5

RUNS_KWARGS = dict(n_rows=2000, time_limit=20.0, skip_slow_on_wide=25)


def test_tables_4_and_5(run_once):
    runs = run_once(known_structure_runs, **RUNS_KWARGS)
    t4, t5 = table4(runs), table5(runs)
    emit(t4.render())
    emit(t5.render())

    def mean_f1(method: str) -> float:
        scores = []
        for per_method in runs.values():
            outcome, prf = per_method[method]
            scores.append(0.0 if outcome.timed_out else prf.f1)
        return float(np.mean(scores))

    fdx = mean_f1("FDX")
    competitors = {m: mean_f1(m) for m in
                   ("GL", "PYRO", "TANE", "CORDS", "RFI(.3)", "RFI(.5)", "RFI(1.0)")}
    emit(f"mean F1 — FDX: {fdx:.3f}, competitors: "
         + ", ".join(f"{m}={v:.3f}" for m, v in competitors.items()))
    # FDX wins on average (the paper's 2x average-F1 headline).
    assert fdx >= max(competitors.values())
    # Syntactic methods are at most half of FDX's F1 on these benchmarks.
    assert fdx >= 1.5 * np.mean([competitors["PYRO"], competitors["TANE"]])
    # RFI exceeds the budget on the widest network (Alarm), as in the paper.
    alarm = runs["alarm"]
    assert alarm["RFI(1.0)"][0].timed_out
    # FDX terminates quickly everywhere.
    assert all(per["FDX"][0].seconds < 10.0 for per in runs.values())
