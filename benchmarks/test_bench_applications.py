"""Extension benchmarks: downstream applications of discovered FDs.

Not paper figures — they quantify the three §1 motivations end to end:
selectivity estimation (query optimization), FD-driven repair (data
cleaning) and constraint discovery beyond FDs.
"""

import numpy as np
from conftest import emit

from repro.apps.selectivity import (
    IndependenceEstimator,
    StructuredSelectivityEstimator,
    q_error,
    true_selectivity,
)
from repro.constraints import DenialConstraintDiscovery
from repro.core.fd import FD
from repro.core.fdx import FDX
from repro.dataset.noise import RandomFlipNoise
from repro.dataset.relation import Relation
from repro.prep.repair import repair, repair_precision_recall


def entity_relation(n=3000, seed=11):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        p = int(rng.integers(30))
        rows.append((p, f"name_{p}", f"cat_{p % 6}", int(rng.integers(4))))
    return Relation.from_rows(["pid", "name", "category", "channel"], rows)


def test_selectivity_q_error(run_once):
    rel = entity_relation()

    def run():
        result = FDX().discover(rel)
        structured = StructuredSelectivityEstimator(
            result.fds, result.attribute_order, n_samples=30_000
        ).fit(rel)
        independent = IndependenceEstimator().fit(rel)
        qs_s, qs_i = [], []
        for p in range(10):
            predicates = {"pid": p, "name": f"name_{p}", "category": f"cat_{p % 6}"}
            truth = true_selectivity(rel, predicates)
            qs_s.append(q_error(structured.estimate(predicates), truth))
            qs_i.append(q_error(independent.estimate(predicates), truth))
        return float(np.median(qs_s)), float(np.median(qs_i))

    q_struct, q_indep = run_once(run)
    emit(f"selectivity median q-error: structured={q_struct:.2f} "
         f"independence={q_indep:.2f}")
    assert q_struct < q_indep / 5  # orders-of-magnitude win on FD predicates
    assert q_struct < 2.0


def test_repair_quality(run_once):
    clean = entity_relation()

    def run():
        noisy, _ = RandomFlipNoise(0.05, attributes=["name", "category"]).apply(
            clean, np.random.default_rng(1)
        )
        fds = FDX().discover(noisy).fds
        repaired, report = repair(noisy, fds)
        return repair_precision_recall(report, clean, noisy, repaired)

    precision, recall = run_once(run)
    emit(f"FD-driven repair: precision={precision:.3f} recall={recall:.3f}")
    assert precision > 0.9
    assert recall > 0.6


def test_denial_constraints_subsume_fdx_fds(run_once):
    rel = entity_relation(1500)

    def run():
        fdx_fds = set(FDX().discover(rel).fds)
        dcs = DenialConstraintDiscovery(max_predicates=2).discover(rel)
        return fdx_fds, set(dcs.implied_fds()), len(dcs.constraints)

    fdx_fds, dc_fds, n_dcs = run_once(run)
    emit(f"DCs: {n_dcs} minimal, {len(dc_fds)} FD-shaped; FDX found {len(fdx_fds)}")
    # DC discovery confirms FDX's single-determinant FDs syntactically.
    confirmed = {fd for fd in fdx_fds if fd.arity == 1} & dc_fds
    assert confirmed, (fdx_fds, dc_fds)
