"""Reproduce paper Figure 4: RFI's scored FDs on Hospital.

Expected shape: RFI also finds the meaningful entity dependencies, with
one scored FD per attribute, but is orders of magnitude slower than FDX
on the same input.
"""

import time

from conftest import emit

from repro.baselines.rfi import Rfi
from repro.core.fdx import FDX
from repro.datagen.realworld import load_dataset


def test_figure4(run_once):
    ds = load_dataset("hospital")
    rfi = Rfi(alpha=1.0, time_limit=600.0)

    result = run_once(rfi.discover, ds.relation)
    emit("FDs discovered by RFI for Hospital (scores in parentheses):")
    emit("\n".join(f"  {fd} ({result.scores[fd]:.4f})" for fd in result.fds))

    assert result.fds, "RFI found no FDs on hospital"
    # One FD per determined attribute, scores within [0, 1].
    rhs = [fd.rhs for fd in result.fds]
    assert len(rhs) == len(set(rhs))
    assert all(0.0 <= s <= 1.0 for s in result.scores.values())
    # High-scoring FDs include an entity dependency.
    strong = [fd for fd in result.fds if result.scores[fd] > 0.5]
    assert any(
        set(fd.lhs) & {"ProviderNumber", "HospitalName", "MeasureCode", "City",
                       "MeasureName", "Stateavg"}
        for fd in strong
    )
    # RFI is much slower than FDX on the same relation (paper Table 6).
    t0 = time.perf_counter()
    FDX().discover(ds.relation)
    fdx_seconds = time.perf_counter() - t0
    assert result.seconds > 3 * fdx_seconds
