"""Reproduce paper Figure 2: F1 of every method across the synthetic grid.

Run at reduced tuple scale (EXPERIMENTS.md). Expected shape: FDX has the
highest (or tied-highest) F1 on every panel; low-noise panels beat their
high-noise twins for FDX; TANE/RFI fail to finish on wide panels.
"""

import numpy as np
from conftest import emit

from repro.experiments.figures import FIGURE2_PANELS, figure2

KWARGS = dict(n_instances=1, scale=0.02, time_limit=45.0, seed=1)


def test_figure2(run_once):
    fig = run_once(figure2, **KWARGS)
    emit(fig.render())
    # A DNF (NaN) counts as 0 when comparing against FDX — the paper's
    # missing bars are losses for the method that timed out.
    by_method = {s.name: np.nan_to_num(np.array(s.y), nan=0.0) for s in fig.series}
    fdx = by_method["FDX"]
    assert not np.isnan(np.array(next(s.y for s in fig.series if s.name == "FDX"))).any()
    # FDX leads or ties (within tolerance) every panel.
    for method, ys in by_method.items():
        if method == "FDX":
            continue
        assert np.all(fdx >= ys - 0.15), (method, ys, fdx)
    # FDX mean F1 is the highest outright.
    means = {m: float(np.mean(v)) for m, v in by_method.items()}
    emit("mean F1: " + ", ".join(f"{m}={v:.3f}" for m, v in means.items()))
    assert means["FDX"] == max(means.values())
    # Low-noise panels are no worse than their high-noise twins for FDX.
    panel_names = fig.series[0].x
    for i in range(0, len(panel_names), 2):
        high, low = fdx[i], fdx[i + 1]
        assert low >= high - 0.1, (panel_names[i], high, low)
