"""Extension benchmark: streaming FDX vs batch FDX.

Not a paper figure — validates the incremental variant (DESIGN.md §6):
feeding the same rows in batches must preserve accuracy while each update
touches only the new batch.
"""

import numpy as np
from conftest import emit

from repro.core.fd import FD
from repro.core.fdx import FDX
from repro.core.incremental import IncrementalFDX
from repro.datagen.synthetic import SyntheticSpec, generate
from repro.metrics.evaluation import score_fds


def test_incremental_vs_batch(run_once):
    ds = generate(SyntheticSpec(n_tuples=3000, n_attributes=10, seed=4,
                                domain_low=16, domain_high=64, noise_rate=0.02))
    rel, truth = ds.relation, ds.true_fds

    def run():
        batch_f1 = score_fds(FDX().discover(rel).fds, truth).f1
        inc = IncrementalFDX()
        for start in range(0, rel.n_rows, 500):
            inc.add_batch(rel.select_rows(np.arange(start, start + 500)))
        inc_f1 = score_fds(inc.discover().fds, truth).f1
        return batch_f1, inc_f1, inc.n_batches

    batch_f1, inc_f1, n_batches = run_once(run)
    emit(f"incremental: batch F1={batch_f1:.3f}, streaming F1={inc_f1:.3f} "
         f"over {n_batches} batches")
    assert n_batches == 6
    assert inc_f1 >= batch_f1 - 0.2
    assert inc_f1 >= 0.5
