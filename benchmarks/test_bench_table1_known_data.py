"""Reproduce paper Tables 1-3 (dataset summaries)."""

from conftest import emit

from repro.experiments.tables import table1, table2, table3


def test_table1_benchmark_networks(run_once):
    t = run_once(table1)
    emit(t.render())
    attrs = dict(zip(t.column("Data set"), t.column("Attributes")))
    assert attrs == {"Alarm": 37, "Asia": 8, "Cancer": 5, "Child": 20, "Earthquake": 5}


def test_table2_synthetic_settings(run_once):
    t = run_once(table2)
    emit(t.render())
    assert len(t.rows) == 4


def test_table3_real_world_datasets(run_once):
    t = run_once(table3, nypd_rows=10_000)
    emit(t.render())
    tuples = dict(zip(t.column("Data set"), t.column("Tuples")))
    assert tuples["australian"] == 690
    assert tuples["hospital"] == 1000
    assert tuples["tic-tac-toe"] == 958
