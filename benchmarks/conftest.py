"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (recorded in EXPERIMENTS.md) and prints the reproduced rows
or series, so the captured benchmark output doubles as the reproduction
log. Heavy experiments run once per benchmark (``pedantic`` mode) — the
interesting measurement is the experiment's own internal timing, not
statistical timer stability.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def emit(text: str) -> None:
    """Print a reproduced table/figure into the captured benchmark log."""
    print()
    print(text)
