"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (recorded in EXPERIMENTS.md) and prints the reproduced rows
or series, so the captured benchmark output doubles as the reproduction
log. Heavy experiments run once per benchmark (``pedantic`` mode) — the
interesting measurement is the experiment's own internal timing, not
statistical timer stability.

Machine-readable output hooks into the regression ledger shared with
``python -m repro bench`` (:mod:`repro.obs.bench`):

* ``--benchmark-json out.json`` — the standard pytest-benchmark dump is
  enriched with the same environment fingerprint, git sha and peak RSS
  the ledger records, so either artifact alone explains a timing shift.
* ``--bench-ledger DIR`` — additionally appends one run record (median
  seconds per benchmark) to ``DIR/BENCH_pytest.json``, putting pytest
  benchmarks on the same robust median+MAD regression gate:

      pytest benchmarks/ --bench-ledger .
      python - <<'PY'
      from repro.obs import bench
      doc = bench.load_ledger("BENCH_pytest.json")
      print(bench.detect_regressions(doc["runs"][:-1], doc["runs"][-1]))
      PY
"""

import json
import os

import pytest

from repro.obs import bench


def pytest_addoption(parser):
    parser.addoption(
        "--bench-ledger",
        default=None,
        metavar="DIR",
        help="append this run's medians to DIR/BENCH_pytest.json "
        "(repro.obs.bench ledger format)",
    )


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def emit(text: str, data: dict | None = None) -> None:
    """Print a reproduced table/figure into the captured benchmark log.

    ``data`` (optional) additionally prints one ``BENCHDATA {...}`` JSON
    line so scripts can scrape structured results out of the log without
    parsing the human-facing table.
    """
    print()
    print(text)
    if data is not None:
        print("BENCHDATA " + json.dumps(data, sort_keys=True, default=str))


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp ``--benchmark-json`` output with the ledger's provenance."""
    output_json["env"] = bench.env_fingerprint()
    output_json["git_sha"] = bench.git_sha()
    output_json["peak_rss_bytes"] = bench.peak_rss_bytes()


def pytest_sessionfinish(session, exitstatus):
    ledger_dir = session.config.getoption("--bench-ledger")
    if not ledger_dir:
        return
    bsession = getattr(session.config, "_benchmarksession", None)
    if bsession is None or not bsession.benchmarks:
        return
    results = {
        meta.name: {
            "seconds": float(meta.stats.median),
            "repeats": int(meta.stats.rounds),
        }
        for meta in bsession.benchmarks
    }
    record = {
        "recorded_at": bench.time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": bench.git_sha(),
        "env": bench.env_fingerprint(),
        "smoke": False,
        "peak_rss_bytes": bench.peak_rss_bytes(),
        "results": results,
    }
    os.makedirs(ledger_dir, exist_ok=True)
    path = bench.ledger_path("pytest", ledger_dir)
    bench.append_run(path, "pytest", record)
    print(f"\nbench ledger: recorded {len(results)} benchmarks -> {path}")
