"""Reproduce paper Figure 7: effect of increasing noise on FDX.

Expected shape: F1 degrades gracefully as the noise rate climbs from 1%
to 50%, and FDX remains usable (non-zero) at high noise on most settings.
"""

import numpy as np
from conftest import emit

from repro.experiments.figures import figure7

KWARGS = dict(n_instances=2, scale=0.02, seed=2)


def test_figure7(run_once):
    fig = run_once(figure7, **KWARGS)
    emit(fig.render())
    assert len(fig.series) == 8
    for s in fig.series:
        low_noise = s.y[0]
        high_noise = s.y[-1]
        # Performance at 50% noise never beats 1% noise by a margin.
        assert high_noise <= low_noise + 0.1, (s.name, s.y)
    # Across settings, median low-noise F1 is solid and the degradation
    # is graceful rather than a collapse to zero everywhere.
    lows = [s.y[0] for s in fig.series]
    highs = [s.y[-1] for s in fig.series]
    assert float(np.median(lows)) >= 0.5
    assert max(highs) > 0.0
