"""Component micro-benchmarks (no paper counterpart; regression guards).

Times the hot paths every experiment depends on: the pair-difference
transform, graphical lasso, stripped-partition products, the UDU
factorization and the exact expected-MI computation.
"""

import numpy as np

from repro.baselines.partitions import Partition
from repro.core.transform import pair_difference_transform
from repro.datagen.synthetic import SyntheticSpec, generate
from repro.linalg.cholesky import udu_decompose
from repro.linalg.covariance import empirical_covariance
from repro.linalg.glasso import graphical_lasso
from repro.metrics.information import expected_mutual_information


def test_micro_pair_transform(benchmark):
    ds = generate(SyntheticSpec(n_tuples=2000, n_attributes=20, seed=0))
    out = benchmark(pair_difference_transform, ds.relation, np.random.default_rng(0))
    assert out.shape == (2000 * 20, 20)


def test_micro_graphical_lasso(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2000, 30))
    X[:, 1] = 0.9 * X[:, 0] + 0.2 * X[:, 1]
    S = empirical_covariance(X)
    result = benchmark(graphical_lasso, S, 0.05)
    assert result.precision.shape == (30, 30)


def test_micro_partition_product(benchmark):
    rng = np.random.default_rng(0)
    a = Partition.from_codes(rng.integers(50, size=20_000))
    b = Partition.from_codes(rng.integers(50, size=20_000))
    product = benchmark(a.multiply, b)
    assert product.n_rows == 20_000


def test_micro_udu_factorization(benchmark):
    rng = np.random.default_rng(1)
    A = rng.normal(size=(80, 80))
    spd = A @ A.T + 80 * np.eye(80)
    U, d = benchmark(udu_decompose, spd)
    assert np.all(d > 0)


def test_micro_expected_mi(benchmark):
    rng = np.random.default_rng(2)
    table = rng.integers(0, 30, size=(40, 10))
    emi = benchmark(expected_mutual_information, table)
    assert emi >= 0.0
