"""Ablation benchmark: graphical-lasso penalty sensitivity.

Quantifies the "without any tedious fine tuning" claim: FDX accuracy over
a 20x penalty range and under automatic eBIC selection. Expected shape:
a broad plateau of usable penalties, with eBIC landing inside it.
"""

import numpy as np
from conftest import emit

from repro.experiments.tables import lambda_sensitivity

KWARGS = dict(n_rows=2000, networks=("asia", "cancer", "earthquake", "child"))


def test_lambda_sensitivity(run_once):
    t = run_once(lambda_sensitivity, **KWARGS)
    emit(t.render())
    grid = t.headers[2:]
    f1_rows = [row for row in t.rows if row[1] == "F1"]
    mean_f1 = {
        g: float(np.mean([row[2 + j] for row in f1_rows]))
        for j, g in enumerate(grid)
    }
    emit("mean F1 per penalty: " + ", ".join(f"{g}={v:.3f}" for g, v in mean_f1.items()))
    fixed = [v for g, v in mean_f1.items() if g != "ebic"]
    # Broad usable plateau: the numeric penalties stay within 0.25 F1 of
    # the best one across the 20x range.
    assert max(fixed) - min(fixed) < 0.25
    # eBIC lands at or near the plateau's level.
    assert mean_f1["ebic"] >= max(fixed) - 0.1
