"""Observability overhead benchmarks (regression guards, no paper counterpart).

The tracer must be near-free when disabled: ``FDX.discover`` emits a
handful of spans per run, so the budget is that all disabled-tracer span
bookkeeping amortized over one discovery stays under 5% of the discovery
itself. Also records the enabled-vs-disabled discovery comparison so the
real cost of tracing is visible in the benchmark log.
"""

import time

import numpy as np

from repro.core.fdx import FDX
from repro.dataset.relation import Relation
from repro.obs import InMemorySink, MemoryTracker, SamplingProfiler, Tracer

from conftest import emit


def _relation(n=1000, p=10, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(20))
        rows.append(tuple([base, base % 5] + [int(rng.integers(6)) for _ in range(p - 2)]))
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


def _spans_per_discovery(tracer, relation):
    """Count the spans one discovery opens under this tracer."""
    probe = Tracer(enabled=True)
    FDX(seed=0, tracer=probe).discover(relation)
    return sum(1 for _ in probe.last_root.walk())


def test_disabled_tracer_overhead_under_5_percent(run_once):
    """Per-discovery cost of disabled-tracer span bookkeeping <= 5%."""
    relation = _relation()
    disabled = Tracer(enabled=False)
    n_spans = _spans_per_discovery(disabled, relation)

    def measure():
        # Wall time of one un-traced discovery (the denominator).
        fdx = FDX(seed=0, tracer=disabled)
        t0 = time.perf_counter()
        fdx.discover(relation)
        discover_seconds = time.perf_counter() - t0

        # Cost of a disabled span enter/exit, amortized (the numerator).
        # 100k iterations keeps timer noise well below the 5% budget.
        iterations = 100_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            with disabled.span("noop", key="value"):
                pass
        per_span = (time.perf_counter() - t0) / iterations
        return discover_seconds, per_span

    discover_seconds, per_span = run_once(measure)
    overhead = per_span * n_spans
    ratio = overhead / discover_seconds
    emit(
        "disabled-tracer overhead:\n"
        f"  spans per discovery : {n_spans}\n"
        f"  per-span cost       : {per_span * 1e9:.0f} ns\n"
        f"  amortized overhead  : {overhead * 1e6:.1f} us over "
        f"{discover_seconds * 1e3:.1f} ms ({ratio:.5%})"
    )
    assert ratio <= 0.05, f"disabled tracer costs {ratio:.2%} of a discovery"


def test_enabled_vs_disabled_discovery(run_once):
    """Record the full cost of tracing (spans + glasso telemetry)."""
    relation = _relation()

    def measure():
        timings = {}
        for label, tracer in (
            ("disabled", Tracer(enabled=False)),
            ("enabled", Tracer(enabled=True, sinks=[InMemorySink()])),
        ):
            fdx = FDX(seed=0, tracer=tracer)
            fdx.discover(relation)  # warm caches, then time
            t0 = time.perf_counter()
            result = fdx.discover(relation)
            timings[label] = time.perf_counter() - t0
            assert result.fds
        return timings

    timings = run_once(measure)
    emit(
        "tracing cost per discovery (1000x10):\n"
        f"  disabled : {timings['disabled'] * 1e3:.1f} ms\n"
        f"  enabled  : {timings['enabled'] * 1e3:.1f} ms\n"
        f"  ratio    : {timings['enabled'] / timings['disabled']:.2f}x"
    )
    # Enabled tracing adds per-iteration glasso telemetry; it must stay
    # within an order of magnitude, not within the 5% disabled budget.
    assert timings["enabled"] < timings["disabled"] * 10


def test_disabled_memory_tracker_overhead_under_5_percent(run_once):
    """Per-discovery cost of disabled per-stage memory accounting <= 5%.

    ``FDX(track_memory=False)`` (the default) still enters one tracker
    context plus one null stage context per pipeline stage; that
    bookkeeping must be invisible next to the discovery itself.
    """
    relation = _relation()
    tracker = MemoryTracker(enabled=False)
    n_stages = 5  # transform, covariance, glasso, factorization, fd_generation

    def measure():
        fdx = FDX(seed=0)  # track_memory defaults off
        t0 = time.perf_counter()
        fdx.discover(relation)
        discover_seconds = time.perf_counter() - t0

        iterations = 100_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            with tracker, tracker.stage("noop"):
                pass
        per_entry = (time.perf_counter() - t0) / iterations
        return discover_seconds, per_entry

    discover_seconds, per_entry = run_once(measure)
    overhead = per_entry * (n_stages + 1)
    ratio = overhead / discover_seconds
    emit(
        "disabled memory-tracker overhead:\n"
        f"  per tracker+stage entry : {per_entry * 1e9:.0f} ns\n"
        f"  amortized overhead      : {overhead * 1e6:.1f} us over "
        f"{discover_seconds * 1e3:.1f} ms ({ratio:.5%})",
        data={
            "benchmark": "memory_tracker_disabled_overhead",
            "ratio": ratio,
            "per_entry_ns": per_entry * 1e9,
        },
    )
    assert ratio <= 0.05, f"disabled memory tracker costs {ratio:.2%} of a discovery"


def test_flight_recorder_overhead_under_5_percent(run_once):
    """Per-discovery cost of the always-on flight recorder <= 5%.

    The service routes every request log line, metric delta and span
    through ``FlightRecorder.record`` (one lock + one deque append).
    Budget: a generous 50 recorded events per request must stay under
    5% of the discovery that request performs.
    """
    from repro.obs import FlightRecorder

    relation = _relation()
    recorder = FlightRecorder(capacity=4096)
    events_per_request = 50

    def measure():
        fdx = FDX(seed=0)
        t0 = time.perf_counter()
        fdx.discover(relation)
        discover_seconds = time.perf_counter() - t0

        iterations = 100_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            recorder.record("metric", name="requests_total", delta=1)
        per_event = (time.perf_counter() - t0) / iterations
        return discover_seconds, per_event

    discover_seconds, per_event = run_once(measure)
    overhead = per_event * events_per_request
    ratio = overhead / discover_seconds
    emit(
        "flight-recorder overhead:\n"
        f"  per-event cost     : {per_event * 1e9:.0f} ns\n"
        f"  amortized overhead : {overhead * 1e6:.1f} us over "
        f"{discover_seconds * 1e3:.1f} ms ({ratio:.5%})",
        data={
            "benchmark": "flight_recorder_overhead",
            "ratio": ratio,
            "per_event_ns": per_event * 1e9,
        },
    )
    assert ratio <= 0.05, f"flight recorder costs {ratio:.2%} of a discovery"


def test_evidence_ledger_overhead_under_5_percent(run_once):
    """Per-discovery cost of the evidence ledger <= 5%.

    ``FDX(evidence=True)`` (the default) rebuilds the emit/suppress
    evidence once per discovery from the fitted matrices. Measure that
    build directly — amortized over many iterations on the run's real
    matrices, like the other guards here, so the verdict does not ride
    on the noise of differencing two whole-discovery timings — and hold
    it under 5% of the discovery it annotates.
    """
    from repro.obs import build_evidence

    relation = _relation()

    def measure():
        fdx = FDX(seed=0, evidence=False)
        fdx.discover(relation)  # warm caches, then time
        t0 = time.perf_counter()
        result = fdx.discover(relation)
        discover_seconds = time.perf_counter() - t0

        p = result.precision.shape[0]
        iterations = 200
        t0 = time.perf_counter()
        for _ in range(iterations):
            build_evidence(
                autoregression=result.autoregression,
                order=np.arange(p),
                names=[f"a{i}" for i in range(p)],
                precision=result.precision,
                sparsity=0.05,
                n_pair_samples=result.n_pair_samples,
            )
        per_build = (time.perf_counter() - t0) / iterations
        return discover_seconds, per_build

    discover_seconds, per_build = run_once(measure)
    ratio = per_build / discover_seconds
    emit(
        "evidence-ledger overhead:\n"
        f"  per-build cost     : {per_build * 1e6:.1f} us\n"
        f"  over one discovery : {discover_seconds * 1e3:.1f} ms ({ratio:.5%})",
        data={
            "benchmark": "evidence_ledger_overhead",
            "ratio": ratio,
            "per_build_us": per_build * 1e6,
        },
    )
    assert ratio <= 0.05, f"evidence ledger costs {ratio:.2%} of a discovery"


def test_profiled_vs_plain_discovery(run_once):
    """Record the cost of sampling the discovery at 200 Hz."""
    relation = _relation()

    def measure():
        fdx = FDX(seed=0)
        fdx.discover(relation)  # warm caches, then time
        t0 = time.perf_counter()
        fdx.discover(relation)
        plain = time.perf_counter() - t0

        profiler = SamplingProfiler(hz=200)
        t0 = time.perf_counter()
        with profiler:
            fdx.discover(relation)
        profiled = time.perf_counter() - t0
        return plain, profiled, profiler.n_samples

    plain, profiled, n_samples = run_once(measure)
    emit(
        "sampling profiler cost per discovery (1000x10, 200 Hz):\n"
        f"  plain    : {plain * 1e3:.1f} ms\n"
        f"  profiled : {profiled * 1e3:.1f} ms "
        f"({n_samples} samples)\n"
        f"  ratio    : {profiled / plain:.2f}x",
        data={
            "benchmark": "sampling_profiler_overhead",
            "ratio": profiled / plain,
            "n_samples": n_samples,
        },
    )
    assert n_samples > 0
    # Sampling reads frames from a side thread; the workload itself must
    # not slow down materially (generous 2x bound absorbs CI noise).
    assert profiled < plain * 2
