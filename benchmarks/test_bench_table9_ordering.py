"""Reproduce paper Table 9: FDX under different column orderings.

Expected shape: FDX is not hypersensitive to the ordering heuristic — the
natural order and the minimum-degree heuristic produce the best results
on most datasets, and no ordering collapses recall to zero across the
board (paper §5.6.2).
"""

import numpy as np
from conftest import emit

from repro.experiments.tables import table9

KWARGS = dict(n_rows=2000)


def test_table9(run_once):
    t = run_once(table9, **KWARGS)
    emit(t.render())
    orderings = t.headers[2:]
    f1_rows = [row for row in t.rows if row[1] == "F1"]
    mean_f1 = {
        o: float(np.mean([row[2 + j] for row in f1_rows]))
        for j, o in enumerate(orderings)
    }
    emit("mean F1 per ordering: " + ", ".join(f"{o}={v:.3f}" for o, v in mean_f1.items()))
    best = max(mean_f1.values())
    # natural is among the best orderings (within 0.02 of the max).
    assert mean_f1["natural"] >= best - 0.02
    # Every ordering recovers something on average.
    assert min(mean_f1.values()) > 0.15
