"""Reproduce paper Table 8: FDX under different sparsity settings.

Expected shape: the number of discovered FDs shrinks monotonically as the
sparsity threshold grows; precision never collapses at moderate
thresholds; the best F1 for the larger networks is reached at a non-zero
threshold (the paper's "apply some sparsity for large data sets" claim).
"""

from conftest import emit

from repro.experiments.tables import SPARSITY_GRID, table8

KWARGS = dict(n_rows=2000)


def test_table8(run_once):
    t = run_once(table8, **KWARGS)
    emit(t.render())
    grid_cols = t.headers[2:]
    for dataset in {row[0] for row in t.rows}:
        nfds = next(row[2:] for row in t.rows if row[0] == dataset and row[1] == "# of FDs")
        assert all(a >= b for a, b in zip(nfds, nfds[1:])), (dataset, nfds)
    # For the largest network, some positive threshold beats threshold 0.
    alarm_f1 = next(row[2:] for row in t.rows if row[0] == "Alarm" and row[1] == "F1-score")
    assert max(alarm_f1[1:]) >= alarm_f1[0] - 0.05
    assert len(grid_cols) == len(SPARSITY_GRID)
