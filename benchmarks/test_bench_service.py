"""Service-layer benchmark: cold vs. cache-hit discovery latency.

Measures the full HTTP round trip against a live in-process server — the
cold path pays transform + graphical lasso, the hit path is one SHA-256
of the request body plus two cache lookups. The acceptance bar for the
service is a >= 10x latency reduction on a repeated identical request.
"""

import time

import numpy as np

from conftest import emit
from repro.dataset.relation import Relation
from repro.service import ServiceClient, start_in_thread


def synthetic_relation(n=1000, p=10, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        base = int(rng.integers(20))
        rows.append(tuple([base, base % 5] + [int(rng.integers(6)) for _ in range(p - 2)]))
    return Relation.from_rows([f"a{i}" for i in range(p)], rows)


def run_service_latency():
    with start_in_thread(workers=4) as handle:
        client = ServiceClient(handle.base_url, timeout=120.0)
        client.wait_until_healthy()

        # Median cold latency over distinct datasets (each a guaranteed
        # cache miss); prepared bodies keep the client path identical to
        # the hit measurements below.
        colds = []
        for seed in range(5):
            prepared = client.prepare_discover_body(synthetic_relation(seed=seed))
            t0 = time.perf_counter()
            response = client.discover_prepared(prepared)
            colds.append(time.perf_counter() - t0)
            assert response["cached"] is False
        cold = sorted(colds)[len(colds) // 2]

        prepared = client.prepare_discover_body(synthetic_relation(seed=0))
        hits = []
        for _ in range(10):
            t0 = time.perf_counter()
            response = client.discover_prepared(prepared)
            hits.append(time.perf_counter() - t0)
            assert response["cached"] is True

        hit = sorted(hits)[len(hits) // 2]
        metrics = client.metrics()
        return {
            "cold_ms": cold * 1000,
            "hit_ms": hit * 1000,
            "speedup": cold / hit,
            "hit_rate": metrics["cache_hit_rate"],
            "n_fds": len(response["result"]["fds"]),
        }


def test_bench_service_cold_vs_cache_hit(run_once):
    stats = run_once(run_service_latency)
    emit(
        "Service discovery latency (1000x10 relation, HTTP round trip)\n"
        f"  cold      : {stats['cold_ms']:8.2f} ms  (median of 5, {stats['n_fds']} FDs)\n"
        f"  cache hit : {stats['hit_ms']:8.2f} ms  (median of 10)\n"
        f"  speedup   : {stats['speedup']:8.1f} x\n"
        f"  hit rate  : {stats['hit_rate']:8.0%}"
    )
    assert stats["speedup"] >= 10.0


def run_streaming_session():
    rel = synthetic_relation(n=1000, seed=3)
    with start_in_thread(workers=4) as handle:
        client = ServiceClient(handle.base_url, timeout=120.0)
        client.wait_until_healthy()
        session_id = client.create_session()
        append_seconds = 0.0
        discover_seconds = 0.0
        for start in range(0, 1000, 200):
            batch = rel.select_rows(np.arange(start, start + 200))
            t0 = time.perf_counter()
            client.append_batch(session_id, batch)
            append_seconds += time.perf_counter() - t0
            t0 = time.perf_counter()
            result = client.session_fds(session_id)
            discover_seconds += time.perf_counter() - t0
        client.close_session(session_id)
        return {
            "append_ms": append_seconds / 5 * 1000,
            "discover_ms": discover_seconds / 5 * 1000,
            "n_fds": len(result.fds),
        }


def test_bench_service_streaming_session(run_once):
    stats = run_once(run_streaming_session)
    emit(
        "Streaming session (5 x 200-row batches over HTTP)\n"
        f"  append     : {stats['append_ms']:8.2f} ms / batch\n"
        f"  discover   : {stats['discover_ms']:8.2f} ms / refresh\n"
        f"  final FDs  : {stats['n_fds']}"
    )
    assert stats["n_fds"] >= 1


def run_journal_overhead():
    """Median submit latency with and without the job journal enabled."""
    import shutil
    import tempfile

    from repro.service.jobs import JobManager

    def median_submit_seconds(journal_dir):
        manager = JobManager(workers=2, default_timeout=30.0,
                             max_queue_depth=None, journal_dir=journal_dir)
        try:
            for _ in range(20):  # warm-up: thread pool, journal fd, caches
                manager.submit(lambda: None).wait(timeout=10.0)
            samples = []
            for _ in range(300):
                t0 = time.perf_counter()
                job = manager.submit(lambda: None)
                samples.append(time.perf_counter() - t0)
                job.wait(timeout=10.0)  # keep the queue empty between submits
            samples.sort()
            return samples[len(samples) // 2]
        finally:
            manager.shutdown(wait=True)

    plain = median_submit_seconds(None)
    journal_dir = tempfile.mkdtemp(prefix="repro-bench-journal-")
    try:
        journaled = median_submit_seconds(journal_dir)
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)
    return {
        "plain_us": plain * 1e6,
        "journaled_us": journaled * 1e6,
        "overhead_ratio": journaled / plain,
    }


def test_bench_journal_submit_overhead(run_once):
    stats = run_once(run_journal_overhead)
    emit(
        "Job-journal submit overhead (300 submits, median)\n"
        f"  no journal : {stats['plain_us']:8.1f} us / submit\n"
        f"  journaled  : {stats['journaled_us']:8.1f} us / submit\n"
        f"  ratio      : {stats['overhead_ratio']:8.2f} x",
        data=stats,
    )
    # The write-ahead journal (batched fsync) must stay within 10% of the
    # journal-free submit path; a 50us absolute epsilon absorbs scheduler
    # noise on sub-100us medians.
    assert stats["journaled_us"] <= stats["plain_us"] * 1.10 + 50.0, stats
