"""Reproduce paper Table 7: FDX's profile predicts imputation accuracy.

Expected shape: for most datasets and both imputers, the median
imputation F1 of attributes *participating in an FD* (per FDX's output)
exceeds that of attributes FDX marks independent — under both random and
systematic missingness.
"""

from conftest import emit

from repro.experiments.tables import table7

KWARGS = dict(nypd_rows=3000, hide_rate=0.2, gbm_rounds=30)


def test_table7(run_once):
    t = run_once(table7, **KWARGS)
    emit(t.render())
    wins = 0
    comparisons = 0
    for row in t.rows:
        cells = row[1:]
        # Cells alternate (w/o, w) per (noise, imputer) block; "-" marks an
        # empty attribute group (nothing to compare).
        for j in range(0, len(cells), 2):
            without_fd, with_fd = cells[j], cells[j + 1]
            if without_fd == "-" or with_fd == "-":
                continue
            comparisons += 1
            if with_fd >= without_fd:
                wins += 1
    # "In most cases" (paper): strictly more than two thirds of the
    # group comparisons favor FD-participating attributes.
    assert wins / comparisons > 0.66, (wins, comparisons)
