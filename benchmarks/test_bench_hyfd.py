"""Extension benchmark: HyFD (hybrid) vs TANE (lattice) on exact FDs.

Papenbrock & Naumann's claim, reproduced at small scale: the hybrid
sampling/validation route reaches the same minimal exact FDs as the
levelwise lattice search while validating far fewer candidates.
"""

import numpy as np
from conftest import emit

from repro.baselines.hyfd import HyFD
from repro.baselines.tane import Tane
from repro.dataset.relation import Relation


def entity_relation(n=2000, seed=8):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        k = int(rng.integers(40))
        rows.append((k, k % 8, (k * 3) % 5, k % 2, int(rng.integers(30))))
    return Relation.from_rows(["k", "a", "b", "c", "z"], rows)


def test_hyfd_matches_tane(run_once):
    rel = entity_relation()

    def run():
        hy = HyFD(max_lhs_size=2).discover(rel)
        ta = Tane(max_error=0.0, max_lhs_size=2).discover(rel)
        return hy, ta

    hy, ta = run_once(run)
    emit(f"HyFD: {len(hy.fds)} FDs, {hy.validations} validations, "
         f"{hy.rounds} rounds, {hy.seconds:.2f}s")
    emit(f"TANE: {len(ta.fds)} FDs, {ta.candidates_validated} validations, "
         f"{ta.seconds:.2f}s")
    assert set(hy.fds) == set(ta.fds)
    # The hybrid route validates fewer candidates than the lattice walk.
    assert hy.validations < ta.candidates_validated
