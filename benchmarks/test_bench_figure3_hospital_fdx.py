"""Reproduce paper Figure 3: FDX's autoregression matrix and FDs on Hospital.

Expected shape: the discovered FDs are the meaningful entity dependencies
the paper highlights — hospital-entity attributes determined by
ProviderNumber/HospitalName, City -> CountyName, MeasureCode ->
MeasureName, and the Stateavg relationship — with at most one FD per
attribute.
"""

from conftest import emit

from repro.core.fdx import FDX
from repro.datagen.realworld import load_dataset


def test_figure3(run_once):
    ds = load_dataset("hospital")

    result = run_once(FDX().discover, ds.relation)
    emit("Autoregression heatmap (Hospital):")
    emit("\n".join(result.heatmap_rows(ds.relation.schema.names)))
    emit("Discovered FDs:\n" + "\n".join(f"  {fd}" for fd in result.fds))

    assert len(result.fds) <= ds.relation.n_attributes
    rhs_of = {fd.rhs: set(fd.lhs) for fd in result.fds}
    entity_roots = {"ProviderNumber", "HospitalName", "Address1", "PhoneNumber"}
    # Hospital-entity attributes hang off the entity identifiers.
    entity_hits = sum(
        1 for rhs, lhs in rhs_of.items()
        if rhs in {"HospitalName", "Address1", "City", "ZipCode", "PhoneNumber",
                   "CountyName", "ProviderNumber"}
        and (lhs & (entity_roots | {"City", "ZipCode", "CountyName"}))
    )
    assert entity_hits >= 3
    # The measure-entity dependency is recovered.
    measure_hit = any(
        rhs in {"MeasureName", "Condition", "Stateavg", "MeasureCode"}
        and (lhs & {"MeasureCode", "MeasureName", "Stateavg"})
        for rhs, lhs in rhs_of.items()
    )
    assert measure_hit
