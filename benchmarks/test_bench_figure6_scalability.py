"""Reproduce paper Figure 6: FDX runtime vs number of columns.

Expected shape: total runtime grows polynomially — consistent with the
paper's quadratic-in-columns claim and wildly unlike the exponential
growth of lattice search — and the transform dominates the model time at
large column counts.
"""

import numpy as np
from conftest import emit

from repro.experiments.figures import figure6

KWARGS = dict(column_counts=tuple(range(4, 69, 8)), n_tuples=500, n_instances=1)


def test_figure6(run_once):
    fig = run_once(figure6, **KWARGS)
    emit(fig.render())
    cols = np.array(fig.series[0].x, dtype=float)
    total = np.array(next(s.y for s in fig.series if "total" in s.name))
    # Fit log(t) ~ a*log(r): the growth exponent should be clearly
    # polynomial (roughly quadratic-cubic), not exponential.
    mask = total > 0
    slope = np.polyfit(np.log(cols[mask]), np.log(total[mask]), 1)[0]
    emit(f"fitted growth exponent: {slope:.2f}")
    assert slope < 4.0
    # Runtime at 68 columns stays in interactive range at this scale.
    assert total[-1] < 120.0
