"""Reproduce paper Figure 5: autoregression matrices and feature rankings
for Australian Credit Approval and Mammographic.

Expected shape: FDX identifies A8 as the top determinant of the Australian
target A15, and mass shape/margin as determinants of Mammographic's
severity, with severity in turn determining the BI-RADS assessment
(correct directionality).
"""

from conftest import emit

from repro.core.fdx import FDX
from repro.datagen.realworld import load_dataset
from repro.prep.profiling import feature_ranking


def test_figure5_australian(run_once):
    ds = load_dataset("australian")
    result = run_once(FDX().discover, ds.relation)
    emit("Australian autoregression heatmap:")
    emit("\n".join(result.heatmap_rows(ds.relation.schema.names)))
    ranking = feature_ranking(result, "A15", ds.relation.schema.names)
    emit("Feature ranking for A15: " + ", ".join(f"{n}={w:.3f}" for n, w in ranking))
    assert ranking, "no features ranked for A15"
    assert ranking[0][0] == "A8"


def test_figure5_mammographic(run_once):
    ds = load_dataset("mammographic")
    result = run_once(FDX().discover, ds.relation)
    emit("Mammographic autoregression heatmap:")
    emit("\n".join(result.heatmap_rows(ds.relation.schema.names)))
    ranking = feature_ranking(result, "severity", ds.relation.schema.names)
    emit("Feature ranking for severity: " + ", ".join(f"{n}={w:.3f}" for n, w in ranking))
    # Mass shape/margin and the BI-RADS assessment are the informative
    # partners of severity (age and density are not).
    partners = {name for name, _ in ranking[:3]}
    assert partners & {"shape", "margin"}, ranking
    assert not partners & {"age", "density"}, ranking
    # Directionality (severity -> BI-RADS): under the default *positional*
    # ordering the direction of this edge is fixed by the schema (rads is
    # column 0), so the paper's directionality finding is reproduced with
    # the data-driven residual-variance ordering.
    directed = FDX(ordering="residual_variance").discover(ds.relation)
    emit("residual-variance ordering FDs: " + "; ".join(str(f) for f in directed.fds))
    fd_rads = directed.fd_for("rads")
    assert fd_rads is not None and "severity" in fd_rads.lhs
