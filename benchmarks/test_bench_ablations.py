"""Ablation benchmarks for FDX's design choices (DESIGN.md §6).

Three ablations isolate the ingredients the paper credits for FDX's
robustness:

1. *Pair transform vs raw data* — the paper's central claim (§4.3,
   "similar structure learning methods without the proposed pair-based
   transformation exhibit poor performance").
2. *Circular-shift vs uniform pair sampling* — Algorithm 2's sampling
   heuristic matters on high-cardinality domains.
3. *Block centering (zero-mean correction) on vs off* — the robust-
   covariance ingredient.
"""

import numpy as np
from conftest import emit

from repro.baselines.glasso_raw import GlassoRaw
from repro.core.fdx import FDX
from repro.datagen.synthetic import SyntheticSpec, generate
from repro.metrics.evaluation import score_fds

SEEDS = (0, 1, 2)


def _mean_f1(discover, datasets):
    scores = []
    for ds in datasets:
        fds = discover(ds.relation).fds
        scores.append(score_fds(fds, ds.true_fds).f1)
    return float(np.mean(scores))


def _datasets(noise, seeds=SEEDS, domain=(16, 64)):
    return [
        generate(SyntheticSpec(n_tuples=1000, n_attributes=12, seed=s,
                               domain_low=domain[0], domain_high=domain[1],
                               noise_rate=noise))
        for s in seeds
    ]


def test_ablation_pair_transform_vs_raw(run_once):
    datasets = _datasets(noise=0.1)

    def run():
        fdx = _mean_f1(FDX().discover, datasets)
        raw = _mean_f1(GlassoRaw().discover, datasets)
        return fdx, raw

    fdx, raw = run_once(run)
    emit(f"ablation pair-transform: FDX={fdx:.3f} raw-GL={raw:.3f}")
    assert fdx > raw


def test_ablation_circular_vs_uniform(run_once):
    """The sorted circular shift matters when domains exceed the row
    count — uniform pairs almost never agree on a determinant there."""
    datasets = [
        generate(SyntheticSpec(n_tuples=400, n_attributes=8, seed=s,
                               domain_low=1000, domain_high=1728,
                               noise_rate=0.0))
        for s in (3, 4, 5, 6, 7)
    ]

    def run():
        circ = _mean_f1(FDX(transform="circular").discover, datasets)
        unif = _mean_f1(FDX(transform="uniform").discover, datasets)
        return circ, unif

    circ, unif = run_once(run)
    emit(f"ablation sampling: circular={circ:.3f} uniform={unif:.3f}")
    assert circ >= unif - 0.05


def test_ablation_glasso_vs_neighborhood(run_once):
    """Estimator ablation: graphical lasso vs Meinshausen-Buehlmann
    neighborhood selection inside the same FDX pipeline. Both should be
    competitive (the paper's §2.2 'optimization vs regression methods')."""
    datasets = _datasets(noise=0.05)

    def run():
        gl = _mean_f1(FDX(estimator="glasso").discover, datasets)
        nb = _mean_f1(FDX(estimator="neighborhood").discover, datasets)
        return gl, nb

    gl, nb = run_once(run)
    emit(f"ablation estimator: glasso={gl:.3f} neighborhood={nb:.3f}")
    assert gl > 0.5 and nb > 0.5
    assert abs(gl - nb) < 0.35


def test_ablation_block_centering(run_once):
    datasets = _datasets(noise=0.05)

    def run():
        centered = _mean_f1(FDX(center_blocks=True).discover, datasets)
        pooled = _mean_f1(FDX(center_blocks=False).discover, datasets)
        return centered, pooled

    centered, pooled = run_once(run)
    emit(f"ablation centering: centered={centered:.3f} pooled={pooled:.3f}")
    # Centering never hurts on average (it matters most when unrelated
    # attributes are present; on FD-dense instances the two tie).
    assert centered >= pooled - 0.02
