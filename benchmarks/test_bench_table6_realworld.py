"""Reproduce paper Table 6: runtime and #FDs on real-world noisy data.

Expected shape: FDX/GL/CORDS/RFI emit at most one FD per attribute (a
parsimonious profile); PYRO and TANE emit far more (all minimal
syntactic AFDs); RFI does not finish on the wide+tall NYPD data.
"""

from conftest import emit

from repro.datagen.realworld import load_dataset
from repro.experiments.tables import table6

KWARGS = dict(nypd_rows=10_000, time_limit=20.0)


def test_table6(run_once):
    t = run_once(table6, **KWARGS)
    emit(t.render())
    headers = t.headers
    counts = {}
    for row in t.rows:
        if row[1] != "# of FDs":
            continue
        counts[row[0]] = dict(zip(headers[2:], row[2:]))
    # Parsimonious methods: at most one FD per attribute. (CORDS is
    # pairwise and can exceed this — the paper's own Table 6 reports 26
    # CORDS FDs on the 15-attribute Australian data.)
    n_attrs = {
        name: load_dataset(name, **({"n_rows": 100} if name == "nypd" else {})).relation.n_attributes
        for name in counts
    }
    for name, per_method in counts.items():
        for method in ("FDX", "GL"):
            value = per_method[method]
            if value != "-":
                assert value <= n_attrs[name], (name, method, value)
    # Exhaustive methods dwarf FDX's output on at least half the datasets.
    wins = sum(
        1 for name, per in counts.items()
        if per["PYRO"] != "-" and per["FDX"] != "-" and per["PYRO"] >= 3 * max(per["FDX"], 1)
    )
    assert wins >= len(counts) // 2
    # RFI is DNF on NYPD (wide and tall), as in the paper.
    assert counts["nypd"]["RFI(1.0)"] == "-"
